//! Dependency-free binary codec primitives: a little-endian byte writer /
//! reader pair and an IEEE CRC-32.
//!
//! The release-session subsystem persists the data owner's secrets
//! (transformation keys, fitted normalizers, session metadata) to files.
//! The workspace has no serde, so the higher layers build their formats out
//! of these primitives instead: fixed-width little-endian integers, `f64`
//! bit patterns (lossless for every value including `-0.0` and NaN
//! payloads), and length-prefixed UTF-8 strings. [`ByteReader`] never
//! panics on malformed input — every accessor returns a typed
//! [`DecodeError`] carrying the byte offset of the failure, which is what
//! lets the conformance battery assert that corrupted key files are
//! *rejected*, not crashed on.

use std::fmt;

/// Errors produced while decoding a byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The input ended before a field could be read in full.
    Truncated {
        /// Byte offset at which the read started.
        offset: usize,
        /// How many bytes the field needed.
        needed: usize,
        /// How many bytes were actually available.
        available: usize,
    },
    /// A field was read but its value is invalid (bad bool byte, invalid
    /// UTF-8, an out-of-range count, …).
    Malformed {
        /// Byte offset at which the offending field started.
        offset: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated {
                offset,
                needed,
                available,
            } => write!(
                f,
                "truncated input at byte {offset}: needed {needed} bytes, {available} available"
            ),
            DecodeError::Malformed { offset, message } => {
                write!(f, "malformed field at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decode result alias.
pub type DecodeResult<T> = std::result::Result<T, DecodeError>;

/// An append-only little-endian byte buffer.
#[derive(Debug, Clone, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The accumulated bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a little-endian `u64` (portable across
    /// pointer widths).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as the little-endian encoding of its bit pattern —
    /// lossless for every value, including signed zeros and NaN payloads.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as a single `0`/`1` byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed (`u32`) UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// A cursor over a byte slice with typed, non-panicking accessors.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless the whole input has been consumed — used to reject
    /// trailing garbage after a record.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Malformed`] when bytes remain.
    pub fn expect_end(&self) -> DecodeResult<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::Malformed {
                offset: self.pos,
                message: format!("{} trailing bytes after the record", self.remaining()),
            })
        }
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] when fewer than `n` remain.
    pub fn take_bytes(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                offset: self.pos,
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Takes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] at end of input.
    pub fn take_u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take_bytes(1)?[0])
    }

    /// Takes a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] when fewer than 2 bytes remain.
    pub fn take_u16(&mut self) -> DecodeResult<u16> {
        let b = self.take_bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Takes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] when fewer than 4 bytes remain.
    pub fn take_u32(&mut self) -> DecodeResult<u32> {
        let b = self.take_bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Takes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] when fewer than 8 bytes remain.
    pub fn take_u64(&mut self) -> DecodeResult<u64> {
        let b = self.take_bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Takes a `u64` and narrows it to `usize`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of input, [`DecodeError::Malformed`]
    /// when the value exceeds `usize::MAX`.
    pub fn take_usize(&mut self) -> DecodeResult<usize> {
        let offset = self.pos;
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| DecodeError::Malformed {
            offset,
            message: format!("count {v} does not fit in usize"),
        })
    }

    /// Takes an `f64` from its little-endian bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] when fewer than 8 bytes remain.
    pub fn take_f64(&mut self) -> DecodeResult<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Takes a bool encoded as a `0`/`1` byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of input, [`DecodeError::Malformed`]
    /// for any byte other than `0` or `1`.
    pub fn take_bool(&mut self) -> DecodeResult<bool> {
        let offset = self.pos;
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::Malformed {
                offset,
                message: format!("invalid bool byte {other:#04x}"),
            }),
        }
    }

    /// Takes a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] when the prefix or body is cut short,
    /// [`DecodeError::Malformed`] for invalid UTF-8.
    pub fn take_str(&mut self) -> DecodeResult<&'a str> {
        let len = self.take_u32()? as usize;
        let offset = self.pos;
        let bytes = self.take_bytes(len)?;
        std::str::from_utf8(bytes).map_err(|e| DecodeError::Malformed {
            offset,
            message: format!("invalid UTF-8: {e}"),
        })
    }
}

/// The IEEE CRC-32 lookup table (polynomial `0xEDB88320`, reflected).
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
};

/// IEEE CRC-32 (the zlib/PNG variant) of `bytes`.
///
/// Detects every single-byte corruption and every burst shorter than 32
/// bits, which is what the key-file envelope relies on to reject flipped or
/// truncated secrets instead of silently releasing garbage.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The canonical check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_detects_every_single_byte_flip() {
        let base = b"the data owner's secret rotation key".to_vec();
        let reference = crc32(&base);
        for idx in 0..base.len() {
            for bit in 0..8 {
                let mut corrupted = base.clone();
                corrupted[idx] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "flip at {idx}:{bit}");
            }
        }
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_usize(42);
        w.put_f64(-0.0);
        w.put_f64(f64::MIN_POSITIVE);
        w.put_bool(true);
        w.put_bool(false);
        w.put_str("naïve");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 0xAB);
        assert_eq!(r.take_u16().unwrap(), 0xBEEF);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.take_usize().unwrap(), 42);
        // Bit-exact, sign of zero included.
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.take_f64().unwrap(), f64::MIN_POSITIVE);
        assert!(r.take_bool().unwrap());
        assert!(!r.take_bool().unwrap());
        assert_eq!(r.take_str().unwrap(), "naïve");
        r.expect_end().unwrap();
    }

    #[test]
    fn nan_payload_round_trips() {
        let odd_nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = ByteWriter::new();
        w.put_f64(odd_nan);
        let bytes = w.into_bytes();
        let got = ByteReader::new(&bytes).take_f64().unwrap();
        assert_eq!(got.to_bits(), odd_nan.to_bits());
    }

    #[test]
    fn truncation_reports_offset() {
        let mut w = ByteWriter::new();
        w.put_u32(7);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let err = r.take_u64().unwrap_err();
        assert_eq!(
            err,
            DecodeError::Truncated {
                offset: 0,
                needed: 8,
                available: 4
            }
        );
    }

    #[test]
    fn malformed_bool_and_utf8_rejected() {
        let mut r = ByteReader::new(&[2]);
        assert!(matches!(
            r.take_bool(),
            Err(DecodeError::Malformed { offset: 0, .. })
        ));
        // Length prefix 1 followed by an invalid UTF-8 byte.
        let mut r = ByteReader::new(&[1, 0, 0, 0, 0xFF]);
        assert!(matches!(
            r.take_str(),
            Err(DecodeError::Malformed { offset: 4, .. })
        ));
    }

    #[test]
    fn string_truncation_rejected() {
        let mut w = ByteWriter::new();
        w.put_str("hello");
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 2);
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.take_str(), Err(DecodeError::Truncated { .. })));
    }

    #[test]
    fn expect_end_flags_trailing_bytes() {
        let r = ByteReader::new(&[1, 2, 3]);
        assert!(matches!(
            r.expect_end(),
            Err(DecodeError::Malformed { offset: 0, .. })
        ));
    }
}
