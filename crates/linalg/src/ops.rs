//! Vector helpers shared across the workspace.
//!
//! These are the small slice-level kernels the higher layers (statistics,
//! distances, clustering) are built from.

use crate::{Error, Result};

/// Dot product of two equal-length slices.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> Result<f64> {
    check_same_len(a, b)?;
    Ok(a.iter().zip(b).map(|(x, y)| x * y).sum())
}

/// Euclidean (L2) norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Element-wise difference `a - b` into a new vector.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    check_same_len(a, b)?;
    Ok(a.iter().zip(b).map(|(x, y)| x - y).collect())
}

/// In-place `y += alpha * x`.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) -> Result<()> {
    check_same_len(x, y)?;
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
    Ok(())
}

/// In-place scaling `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Maximum absolute difference between two equal-length slices.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if lengths differ.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> Result<f64> {
    check_same_len(a, b)?;
    Ok(a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max))
}

/// `true` when every pair of elements differs by at most `tol`.
pub fn approx_eq(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

#[inline]
fn check_same_len(a: &[f64], b: &[f64]) -> Result<()> {
    if a.len() != b.len() {
        return Err(Error::DimensionMismatch {
            expected: format!("slice of length {}", a.len()),
            found: format!("slice of length {}", b.len()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap(), 32.0);
        assert!(dot(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn norm2_known() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn sub_known() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 5.0]).unwrap(), vec![2.0, -3.0]);
        assert!(sub(&[1.0], &[]).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y).unwrap();
        assert_eq!(y, vec![3.0, -1.0]);
        assert!(axpy(1.0, &[1.0], &mut y).is_err());
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-0.5, &mut x);
        assert_eq!(x, vec![-0.5, 1.0]);
    }

    #[test]
    fn max_abs_diff_and_approx_eq() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 1.0]).unwrap(), 1.0);
        assert!(approx_eq(&[1.0, 2.0], &[1.0, 2.0 + 1e-12], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.0, 2.0], 1.0));
    }
}
