//! Direct linear solvers: Gaussian elimination with partial pivoting,
//! matrix inversion, and linear least squares via the normal equations.
//!
//! These back the **known-sample attack** in `rbt-attack`: an attacker who
//! knows `k ≥ n` original records and their transformed counterparts can
//! solve `X' ≈ X · Rᵀ` for the rotation `R` by least squares.

use crate::{Error, Matrix, Result};

/// Solves `a · x = b` for a single right-hand side using Gaussian
/// elimination with partial pivoting.
///
/// # Errors
///
/// * [`Error::NotSquare`] if `a` is rectangular,
/// * [`Error::DimensionMismatch`] if `b.len() != a.rows()`,
/// * [`Error::Singular`] if a pivot underflows,
/// * [`Error::InvalidArgument`] if `a` has NaN or infinite entries.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let x = solve_multi(a, &Matrix::from_columns(&[b])?)?;
    Ok(x.column(0))
}

/// Solves `a · X = B` for a matrix of right-hand sides.
///
/// # Errors
///
/// Same conditions as [`solve`], plus [`Error::InvalidArgument`] when the
/// coefficient matrix contains NaN or infinite entries — partial pivoting
/// compares magnitudes, which is meaningless (and used to panic) on
/// non-finite input.
pub fn solve_multi(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if !a.is_square() {
        return Err(Error::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if b.rows() != n {
        return Err(Error::DimensionMismatch {
            expected: format!("rhs with {n} rows"),
            found: format!("rhs with {} rows", b.rows()),
        });
    }
    if n == 0 {
        return Err(Error::Empty);
    }
    if a.has_non_finite() {
        return Err(Error::InvalidArgument(
            "linear solve requires finite coefficients".into(),
        ));
    }

    let mut aug = a.clone();
    let mut rhs = b.clone();
    let m = rhs.cols();

    for col in 0..n {
        // Partial pivot: largest |entry| in the remaining column, keeping
        // the last row on ties (what `Iterator::max_by` did before this
        // loop replaced it, so pivot choices — and every downstream bit —
        // are unchanged). Entries are finite (checked above); `total_cmp`
        // keeps this panic-free even so.
        let mut pivot_row = col;
        let mut pivot_val = aug[(col, col)];
        for r in (col + 1)..n {
            if aug[(r, col)].abs().total_cmp(&pivot_val.abs()).is_ge() {
                pivot_row = r;
                pivot_val = aug[(r, col)];
            }
        }
        if pivot_val.abs() < 1e-12 {
            return Err(Error::Singular);
        }
        if pivot_row != col {
            swap_rows(&mut aug, pivot_row, col);
            swap_rows(&mut rhs, pivot_row, col);
        }
        let pivot = aug[(col, col)];
        for r in (col + 1)..n {
            let factor = aug[(r, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = aug[(col, c)];
                aug[(r, c)] -= factor * v;
            }
            for c in 0..m {
                let v = rhs[(col, c)];
                rhs[(r, c)] -= factor * v;
            }
        }
    }

    // Back substitution.
    let mut x = Matrix::zeros(n, m);
    for c in 0..m {
        for r in (0..n).rev() {
            let mut acc = rhs[(r, c)];
            for k in (r + 1)..n {
                acc -= aug[(r, k)] * x[(k, c)];
            }
            x[(r, c)] = acc / aug[(r, r)];
        }
    }
    Ok(x)
}

/// Inverts a square matrix.
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn invert(a: &Matrix) -> Result<Matrix> {
    solve_multi(a, &Matrix::identity(a.rows()))
}

/// Least-squares solution of the (generally overdetermined) system
/// `a · x ≈ b` via the normal equations `aᵀa x = aᵀb`.
///
/// Adequate for the small, well-conditioned systems in this workspace
/// (attack estimation with attribute counts in the tens).
///
/// # Errors
///
/// * [`Error::DimensionMismatch`] if `b.rows() != a.rows()`,
/// * [`Error::Singular`] if `aᵀa` is singular (rank-deficient `a`).
pub fn least_squares(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if b.rows() != a.rows() {
        return Err(Error::DimensionMismatch {
            expected: format!("rhs with {} rows", a.rows()),
            found: format!("rhs with {} rows", b.rows()),
        });
    }
    let at = a.transpose();
    let ata = at.matmul(a)?;
    let atb = at.matmul(b)?;
    solve_multi(&ata, &atb)
}

/// Projects a square matrix onto the nearest orthogonal matrix (the
/// orthogonal polar factor): `U = M · (MᵀM)^(−1/2)`, computed through the
/// symmetric eigendecomposition of `MᵀM`.
///
/// Used by the attack suite to clean up noisy least-squares rotation
/// estimates (orthogonal Procrustes refinement).
///
/// # Errors
///
/// * [`Error::NotSquare`] for rectangular input,
/// * [`Error::Singular`] if `M` is rank-deficient (an eigenvalue of `MᵀM`
///   underflows),
/// * propagated eigendecomposition failures.
pub fn nearest_orthogonal(m: &Matrix) -> Result<Matrix> {
    if !m.is_square() {
        return Err(Error::NotSquare {
            rows: m.rows(),
            cols: m.cols(),
        });
    }
    let mtm = m.transpose().matmul(m)?;
    let eig = crate::eigen::symmetric_eigen(&mtm)?;
    let scale = eig.eigenvalues.first().copied().unwrap_or(0.0).abs();
    if eig
        .eigenvalues
        .iter()
        .any(|&l| l <= 1e-12 * scale.max(1e-12))
    {
        return Err(Error::Singular);
    }
    // (MᵀM)^(−1/2) = V diag(λ^{-1/2}) Vᵀ.
    let n = m.rows();
    let mut inv_sqrt = Matrix::zeros(n, n);
    for i in 0..n {
        inv_sqrt[(i, i)] = 1.0 / eig.eigenvalues[i].sqrt();
    }
    let root = eig
        .eigenvectors
        .matmul(&inv_sqrt)?
        .matmul(&eig.eigenvectors.transpose())?;
    m.matmul(&root)
}

fn swap_rows(m: &mut Matrix, a: usize, b: usize) {
    if a == b {
        return;
    }
    for c in 0..m.cols() {
        let tmp = m[(a, c)];
        m[(a, c)] = m[(b, c)];
        m[(b, c)] = tmp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::approx_eq;

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x - y = 1  →  x = 2, y = 1
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, -1.0]]).unwrap();
        let x = solve(&a, &[5.0, 1.0]).unwrap();
        assert!(approx_eq(&x, &[2.0, 1.0], 1e-12));
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the leading position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&a, &[3.0, 7.0]).unwrap();
        assert!(approx_eq(&x, &[7.0, 3.0], 1e-12));
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(solve(&a, &[1.0, 2.0]).unwrap_err(), Error::Singular);
    }

    #[test]
    fn solve_validates_shapes() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            solve(&a, &[1.0, 2.0]),
            Err(Error::NotSquare { .. })
        ));
        let sq = Matrix::identity(3);
        assert!(solve(&sq, &[1.0]).is_err());
    }

    #[test]
    fn invert_round_trips() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = invert(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn invert_identity_is_identity() {
        let inv = invert(&Matrix::identity(4)).unwrap();
        assert!(inv.approx_eq(&Matrix::identity(4), 1e-12));
    }

    #[test]
    fn least_squares_exact_when_square() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        let b = Matrix::from_columns(&[&[4.0, 9.0]]).unwrap();
        let x = least_squares(&a, &b).unwrap();
        assert!((x[(0, 0)] - 2.0).abs() < 1e-10);
        assert!((x[(1, 0)] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_overdetermined_line_fit() {
        // Fit y = 2x + 1 through noiseless points (design matrix [x, 1]).
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let design: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 1.0]).collect();
        let a = Matrix::from_row_iter(design).unwrap();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        let b = Matrix::from_columns(&[&ys]).unwrap();
        let coef = least_squares(&a, &b).unwrap();
        assert!((coef[(0, 0)] - 2.0).abs() < 1e-10);
        assert!((coef[(1, 0)] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_recovers_rotation() {
        // The attack use case: given X (k×2) and X' = X Rᵀ, recover Rᵀ.
        let r = crate::Rotation2::from_degrees(312.47).as_matrix();
        let x = Matrix::from_rows(&[&[1.0, 0.2], &[-0.5, 1.3], &[2.0, -1.0], &[0.3, 0.4]]).unwrap();
        let xp = x.matmul(&r.transpose()).unwrap();
        let rt_est = least_squares(&x, &xp).unwrap();
        assert!(rt_est.approx_eq(&r.transpose(), 1e-9));
    }

    #[test]
    fn nearest_orthogonal_fixes_noisy_rotation() {
        let r = crate::Rotation2::from_degrees(147.29).as_matrix();
        // Perturb away from orthogonality.
        let mut noisy = r.clone();
        noisy[(0, 0)] += 0.02;
        noisy[(1, 0)] -= 0.015;
        assert!(!crate::rotation::is_orthogonal(&noisy, 1e-6));
        let fixed = nearest_orthogonal(&noisy).unwrap();
        assert!(crate::rotation::is_orthogonal(&fixed, 1e-10));
        // Still close to the true rotation.
        assert!(fixed.max_abs_diff(&r).unwrap() < 0.05);
    }

    #[test]
    fn nearest_orthogonal_is_identity_on_orthogonal_input() {
        let r = crate::Rotation2::from_degrees(312.47).as_matrix();
        let fixed = nearest_orthogonal(&r).unwrap();
        assert!(fixed.approx_eq(&r, 1e-10));
    }

    #[test]
    fn nearest_orthogonal_validates() {
        assert!(matches!(
            nearest_orthogonal(&Matrix::zeros(2, 3)),
            Err(Error::NotSquare { .. })
        ));
        assert!(matches!(
            nearest_orthogonal(&Matrix::zeros(3, 3)),
            Err(Error::Singular)
        ));
    }

    #[test]
    fn solve_multi_multiple_rhs() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 0.0], &[1.0, 2.0]]).unwrap();
        let x = solve_multi(&a, &b).unwrap();
        let back = a.matmul(&x).unwrap();
        assert!(back.approx_eq(&b, 1e-12));
    }
}
