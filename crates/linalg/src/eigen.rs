//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! This substrate exists for the **PCA covariance-alignment attack** in
//! `rbt-attack`: rotation perturbation preserves the eigenvalue spectrum of
//! the covariance matrix, so an attacker who knows (or can estimate) the
//! original covariance can align eigenbases to recover the rotation. The
//! Jacobi method is exact enough, simple, and has excellent numerical
//! behaviour for the small `n × n` (attribute-count-sized) matrices involved.

use crate::{Error, Matrix, Result};

/// Result of a symmetric eigendecomposition: `a = V · diag(λ) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, sorted in descending order.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors as matrix *columns*, in the same order as
    /// [`eigenvalues`](Self::eigenvalues).
    pub eigenvectors: Matrix,
}

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// Computes the eigendecomposition of a symmetric matrix.
///
/// # Errors
///
/// * [`Error::NotSquare`] / [`Error::NotSymmetric`] for malformed input
///   (symmetry is checked to a `1e-8 · ‖a‖` tolerance),
/// * [`Error::InvalidArgument`] for NaN or infinite entries — these slip
///   through the symmetry check (`NaN > tol` is false) and used to panic in
///   the final eigenvalue sort,
/// * [`Error::NoConvergence`] if the off-diagonal mass does not vanish in
///   `MAX_SWEEPS` (100) sweeps (does not happen for well-posed symmetric input).
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    if !a.is_square() {
        return Err(Error::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(Error::Empty);
    }
    if a.has_non_finite() {
        return Err(Error::InvalidArgument(
            "eigendecomposition requires finite entries".into(),
        ));
    }
    let scale = a.frobenius_norm().max(1.0);
    if !a.is_symmetric(1e-8 * scale) {
        return Err(Error::NotSymmetric);
    }

    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    for _sweep in 0..MAX_SWEEPS {
        let off: f64 = {
            let mut s = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    s += m[(i, j)] * m[(i, j)];
                }
            }
            s
        };
        if off.sqrt() <= 1e-14 * scale {
            return Ok(finish(m, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Classic Jacobi rotation angle.
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // A ← Jᵀ A J, applied to rows/columns p and q.
                for k in 0..n {
                    let akp = m[(k, p)];
                    let akq = m[(k, q)];
                    m[(k, p)] = c * akp - s * akq;
                    m[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = m[(p, k)];
                    let aqk = m[(q, k)];
                    m[(p, k)] = c * apk - s * aqk;
                    m[(q, k)] = s * apk + c * aqk;
                }
                // Accumulate eigenvectors: V ← V J.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(Error::NoConvergence {
        iterations: MAX_SWEEPS,
    })
}

fn finish(m: Matrix, v: Matrix) -> SymmetricEigen {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    // Input is validated finite, but `total_cmp` keeps the sort panic-free
    // regardless (it orders like `partial_cmp` for finite values, so the
    // ordering — and the decomposition — is unchanged).
    order.sort_by(|&a, &b| diag[b].total_cmp(&diag[a]));

    let eigenvalues: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            eigenvectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    SymmetricEigen {
        eigenvalues,
        eigenvectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotation::is_orthogonal;

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-10);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let a =
            Matrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.5], &[-2.0, 0.5, 3.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!(is_orthogonal(&e.eigenvectors, 1e-10));
        // Reconstruct V diag(λ) Vᵀ.
        let n = 3;
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.eigenvalues[i];
        }
        let rec = e
            .eigenvectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.eigenvectors.transpose())
            .unwrap();
        assert!(rec.approx_eq(&a, 1e-9));
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 5.0, 0.0], &[0.0, 0.0, 3.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_rows(&[
            &[2.5, -1.0, 0.3, 0.0],
            &[-1.0, 4.0, 0.7, 0.2],
            &[0.3, 0.7, 1.2, -0.5],
            &[0.0, 0.2, -0.5, 3.3],
        ])
        .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            symmetric_eigen(&Matrix::zeros(2, 3)),
            Err(Error::NotSquare { .. })
        ));
        let asym = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!(matches!(symmetric_eigen(&asym), Err(Error::NotSymmetric)));
        assert!(matches!(
            symmetric_eigen(&Matrix::zeros(0, 0)),
            Err(Error::Empty)
        ));
    }

    #[test]
    fn eigenvector_satisfies_definition() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        for k in 0..2 {
            let vk = e.eigenvectors.column(k);
            let av = a.matvec(&vk).unwrap();
            for i in 0..2 {
                assert!((av[i] - e.eigenvalues[k] * vk[i]).abs() < 1e-9);
            }
        }
    }
}
