//! The dissimilarity matrix of §3.3 — all pairwise object distances.
//!
//! The paper represents proximities as an `m × m` lower-triangular table
//! (Eq. 5). Since `d(i,i) = 0` and `d(i,j) = d(j,i)`, we store only the
//! strict upper triangle in a *condensed* vector of `m·(m−1)/2` entries,
//! halving memory against a dense table (an ablation the bench suite
//! measures).
//!
//! Tables 4, 5 and 6 of the paper are dissimilarity matrices produced by
//! this module; the bench harness prints them in the paper's triangular
//! layout via [`DissimilarityMatrix::format_lower_triangle`].

use crate::distance::Metric;
use crate::kernels;
use crate::pool::{pair_chunks, Pool};
use crate::{Error, Matrix, Result};

/// Condensed (upper-triangle) matrix of pairwise distances.
///
/// # Example
///
/// ```
/// use rbt_linalg::{Matrix, distance::Metric, dissimilarity::DissimilarityMatrix};
///
/// let d = Matrix::from_rows(&[&[0.0], &[1.0], &[3.0]]).unwrap();
/// let dm = DissimilarityMatrix::from_matrix(&d, Metric::Euclidean);
/// assert_eq!(dm.get(0, 2), 3.0);
/// assert_eq!(dm.get(2, 1), 2.0); // symmetric access
/// assert_eq!(dm.get(1, 1), 0.0); // diagonal
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DissimilarityMatrix {
    n: usize,
    /// Strict upper triangle, row-major: (0,1), (0,2), …, (0,n-1), (1,2), …
    condensed: Vec<f64>,
}

impl DissimilarityMatrix {
    /// Computes all pairwise distances between the rows of `data`.
    ///
    /// This is the `threads = 1` case of
    /// [`from_matrix_parallel`](Self::from_matrix_parallel); both use the
    /// fused row-to-block kernels from [`crate::kernels`], so their output
    /// is bit-identical.
    pub fn from_matrix(data: &Matrix, metric: Metric) -> Self {
        let n = data.rows();
        let mut condensed = vec![0.0f64; n.saturating_sub(1) * n / 2];
        fill_rows(data, metric, 0, n, &mut condensed);
        DissimilarityMatrix { n, condensed }
    }

    /// Parallel version of [`from_matrix`](Self::from_matrix) on the shared
    /// scoped pool ([`crate::pool`]). Rows are partitioned on **exact
    /// cumulative pair counts** ([`pair_chunks`]), so the long condensed
    /// spans owned by early rows are balanced across threads, and each
    /// thread fills a disjoint span of the condensed buffer — no locking.
    ///
    /// Falls back to the serial path when `threads <= 1` or the input is
    /// small enough that spawning would dominate.
    pub fn from_matrix_parallel(data: &Matrix, metric: Metric, threads: usize) -> Self {
        let n = data.rows();
        if threads <= 1 || n < 64 {
            return Self::from_matrix(data, metric);
        }
        let total = n.saturating_sub(1) * n / 2;
        let mut condensed = vec![0.0f64; total];

        let row_bounds = pair_chunks(n, threads);
        // Start of row i's span in the condensed buffer.
        let row_offset = |i: usize| -> usize { i * (2 * n - i - 1) / 2 };
        let elem_bounds: Vec<usize> = row_bounds.iter().map(|&r| row_offset(r)).collect();

        Pool::new(threads).for_each_chunk_mut(&mut condensed, &elem_bounds, |idx, _, chunk| {
            fill_rows(data, metric, row_bounds[idx], row_bounds[idx + 1], chunk);
        });

        DissimilarityMatrix { n, condensed }
    }

    /// Builds a dissimilarity matrix from an explicit condensed buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `condensed.len()` is not
    /// `n·(n−1)/2`.
    pub fn from_condensed(n: usize, condensed: Vec<f64>) -> Result<Self> {
        let expected = n.saturating_sub(1) * n / 2;
        if condensed.len() != expected {
            return Err(Error::DimensionMismatch {
                expected: format!("{expected} condensed entries for n={n}"),
                found: format!("{}", condensed.len()),
            });
        }
        Ok(DissimilarityMatrix { n, condensed })
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when there are no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Borrow of the condensed buffer.
    #[inline]
    pub fn condensed(&self) -> &[f64] {
        &self.condensed
    }

    #[inline]
    fn offset(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j);
        // Row i's span starts after rows 0..i, which hold (n-1) + (n-2) + …
        // = i·(2n − i − 1)/2 entries.
        i * (2 * self.n - i - 1) / 2 + (j - i - 1)
    }

    /// Distance `d(i, j)`; symmetric, zero on the diagonal.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        match i.cmp(&j) {
            std::cmp::Ordering::Equal => 0.0,
            std::cmp::Ordering::Less => self.condensed[self.offset(i, j)],
            std::cmp::Ordering::Greater => self.condensed[self.offset(j, i)],
        }
    }

    /// Iterator over `(i, j, d(i,j))` for all `i < j`.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| {
            ((i + 1)..self.n).map(move |j| (i, j, self.condensed[self.offset(i, j)]))
        })
    }

    /// Expands into a dense symmetric `n × n` [`Matrix`].
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for (i, j, d) in self.iter_pairs() {
            m[(i, j)] = d;
            m[(j, i)] = d;
        }
        m
    }

    /// Maximum absolute entry-wise difference with another dissimilarity
    /// matrix; `None` if the object counts differ.
    ///
    /// This is the crate's isometry check: RBT guarantees this is ~0 between
    /// the original and transformed data (Theorem 2).
    pub fn max_abs_diff(&self, other: &DissimilarityMatrix) -> Option<f64> {
        if self.n != other.n {
            return None;
        }
        Some(
            self.condensed
                .iter()
                .zip(&other.condensed)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }

    /// Formats the paper's lower-triangular layout (Eq. 5 / Tables 4–6):
    /// row `i` lists `d(i,0) … d(i,i-1) 0`.
    pub fn format_lower_triangle(&self, decimals: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for i in 0..self.n {
            for j in 0..=i {
                if j > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{:.*}", decimals, self.get(i, j));
            }
            out.push('\n');
        }
        out
    }
}

/// Fills `out` with the condensed spans of rows `start_row..end_row`: for
/// each row `i`, the distances to rows `i+1..n` via the fused block kernel.
fn fill_rows(data: &Matrix, metric: Metric, start_row: usize, end_row: usize, out: &mut [f64]) {
    let n = data.rows();
    let cols = data.cols();
    let flat = data.as_slice();
    let mut off = 0usize;
    for i in start_row..end_row {
        let count = n - i - 1;
        kernels::distances_to_block(
            metric,
            data.row(i),
            &flat[(i + 1) * cols..],
            cols,
            &mut out[off..off + count],
        );
        off += count;
    }
    debug_assert_eq!(off, out.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Matrix {
        Matrix::from_rows(&[&[0.0, 0.0], &[3.0, 4.0], &[6.0, 8.0], &[-3.0, -4.0]]).unwrap()
    }

    #[test]
    fn pairwise_distances_known() {
        let dm = DissimilarityMatrix::from_matrix(&points(), Metric::Euclidean);
        assert_eq!(dm.len(), 4);
        assert_eq!(dm.get(0, 1), 5.0);
        assert_eq!(dm.get(0, 2), 10.0);
        assert_eq!(dm.get(1, 2), 5.0);
        assert_eq!(dm.get(0, 3), 5.0);
        assert_eq!(dm.get(1, 3), 10.0);
        assert_eq!(dm.get(2, 3), 15.0);
    }

    #[test]
    fn symmetry_and_diagonal() {
        let dm = DissimilarityMatrix::from_matrix(&points(), Metric::Manhattan);
        for i in 0..4 {
            assert_eq!(dm.get(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(dm.get(i, j), dm.get(j, i));
            }
        }
    }

    #[test]
    fn condensed_length() {
        let dm = DissimilarityMatrix::from_matrix(&points(), Metric::Euclidean);
        assert_eq!(dm.condensed().len(), 6);
        assert!(!dm.is_empty());
    }

    #[test]
    fn from_condensed_validates() {
        assert!(DissimilarityMatrix::from_condensed(3, vec![1.0, 2.0, 3.0]).is_ok());
        assert!(DissimilarityMatrix::from_condensed(3, vec![1.0]).is_err());
        let empty = DissimilarityMatrix::from_condensed(0, vec![]).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn to_dense_is_symmetric() {
        let dm = DissimilarityMatrix::from_matrix(&points(), Metric::Euclidean);
        let dense = dm.to_dense();
        assert!(dense.is_symmetric(0.0));
        assert_eq!(dense[(0, 1)], 5.0);
        assert_eq!(dense[(3, 2)], 15.0);
    }

    #[test]
    fn iter_pairs_covers_upper_triangle() {
        let dm = DissimilarityMatrix::from_matrix(&points(), Metric::Euclidean);
        let pairs: Vec<_> = dm.iter_pairs().collect();
        assert_eq!(pairs.len(), 6);
        assert_eq!(pairs[0], (0, 1, 5.0));
        assert_eq!(pairs[5], (2, 3, 15.0));
    }

    #[test]
    fn max_abs_diff_detects_changes() {
        let a = DissimilarityMatrix::from_matrix(&points(), Metric::Euclidean);
        let mut shifted = points();
        shifted.row_mut(0)[0] += 0.5;
        let b = DissimilarityMatrix::from_matrix(&shifted, Metric::Euclidean);
        assert!(a.max_abs_diff(&a).unwrap() == 0.0);
        assert!(a.max_abs_diff(&b).unwrap() > 0.0);
        let tiny = DissimilarityMatrix::from_condensed(2, vec![1.0]).unwrap();
        assert!(a.max_abs_diff(&tiny).is_none());
    }

    #[test]
    fn parallel_matches_serial() {
        // Larger random-ish grid to exercise the parallel path.
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let x = (i as f64 * 0.7).sin() * 10.0;
                let y = (i as f64 * 1.3).cos() * 5.0;
                vec![x, y, x * y]
            })
            .collect();
        let m = Matrix::from_row_iter(rows).unwrap();
        let serial = DissimilarityMatrix::from_matrix(&m, Metric::Euclidean);
        for threads in [2, 3, 4, 8] {
            let par = DissimilarityMatrix::from_matrix_parallel(&m, Metric::Euclidean, threads);
            assert_eq!(serial, par, "threads={threads}");
        }
        // Small input falls back to serial.
        let small = points();
        let par = DissimilarityMatrix::from_matrix_parallel(&small, Metric::Euclidean, 4);
        assert_eq!(
            par,
            DissimilarityMatrix::from_matrix(&small, Metric::Euclidean)
        );
    }

    #[test]
    fn parallel_chunk_boundaries_uneven_pair_totals() {
        // n·(n−1)/2 not divisible by the thread count: 101·100/2 = 5050
        // (5050 % 4 = 2, % 3 = 1) and 67·66/2 = 2211 (2211 % 4 = 3, % 2 = 1).
        // The old `acc >= per_chunk · boundaries.len()` heuristic drifted on
        // exactly these skewed triangular workloads.
        for n in [101usize, 67] {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|i| vec![(i as f64 * 0.9).sin(), (i as f64 * 0.4).cos(), i as f64])
                .collect();
            let m = Matrix::from_row_iter(rows).unwrap();
            let serial = DissimilarityMatrix::from_matrix(&m, Metric::Euclidean);
            for threads in [2usize, 3, 4, 5, 16, 200] {
                let par = DissimilarityMatrix::from_matrix_parallel(&m, Metric::Euclidean, threads);
                assert_eq!(serial, par, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn zero_column_matrix_has_zero_distances() {
        let m = Matrix::zeros(70, 0);
        let dm = DissimilarityMatrix::from_matrix_parallel(&m, Metric::Euclidean, 4);
        assert_eq!(dm.len(), 70);
        assert!(dm.condensed().iter().all(|&d| d == 0.0));
    }

    #[test]
    fn lower_triangle_format_matches_paper_layout() {
        let dm = DissimilarityMatrix::from_matrix(&points(), Metric::Euclidean);
        let s = dm.format_lower_triangle(1);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "0.0");
        assert_eq!(lines[1], "5.0 0.0");
        assert_eq!(lines[3], "5.0 10.0 15.0 0.0");
    }

    #[test]
    fn single_object_and_empty() {
        let one = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let dm = DissimilarityMatrix::from_matrix(&one, Metric::Euclidean);
        assert_eq!(dm.len(), 1);
        assert_eq!(dm.condensed().len(), 0);
        assert_eq!(dm.get(0, 0), 0.0);
    }
}
