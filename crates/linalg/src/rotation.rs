//! Plane rotations — the geometric core of the RBT method.
//!
//! The paper's Eq. (1) defines a **clockwise** rotation of a 2-D point by an
//! angle θ:
//!
//! ```text
//! R = [  cosθ  sinθ ]
//!     [ -sinθ  cosθ ]
//! ```
//!
//! [`Rotation2`] implements exactly this convention, working in degrees at
//! the API surface (the paper reports θ = 312.47°, 147.29°, …) and radians
//! internally. [`givens`] lifts a plane rotation into an `n × n` orthogonal
//! matrix acting on an arbitrary coordinate pair, which is how a sequence of
//! pairwise RBT steps composes into a single n-D isometry.

use crate::{Error, Matrix, Result};

/// A 2-D clockwise rotation (paper Eq. 1).
///
/// # Example
///
/// ```
/// use rbt_linalg::Rotation2;
///
/// let r = Rotation2::from_degrees(90.0);
/// let (x, y) = r.apply_point(1.0, 0.0);
/// // Clockwise 90°: the x-axis unit vector maps to (0, -1).
/// assert!((x - 0.0).abs() < 1e-12 && (y + 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rotation2 {
    /// Angle in radians, measured clockwise.
    theta: f64,
}

impl Rotation2 {
    /// Rotation by `degrees`, measured clockwise.
    pub fn from_degrees(degrees: f64) -> Self {
        Rotation2 {
            theta: degrees.to_radians(),
        }
    }

    /// Rotation by `radians`, measured clockwise.
    pub fn from_radians(radians: f64) -> Self {
        Rotation2 { theta: radians }
    }

    /// The angle in degrees (as constructed; not normalised).
    pub fn degrees(&self) -> f64 {
        self.theta.to_degrees()
    }

    /// The angle in radians (as constructed; not normalised).
    pub fn radians(&self) -> f64 {
        self.theta
    }

    /// `cos θ`.
    #[inline]
    pub fn cos(&self) -> f64 {
        self.theta.cos()
    }

    /// `sin θ`.
    #[inline]
    pub fn sin(&self) -> f64 {
        self.theta.sin()
    }

    /// Rotates a single point `(x, y)` clockwise by θ.
    #[inline]
    pub fn apply_point(&self, x: f64, y: f64) -> (f64, f64) {
        let (s, c) = self.theta.sin_cos();
        (x * c + y * s, -x * s + y * c)
    }

    /// Rotates two equal-length coordinate vectors in place.
    ///
    /// This is the paper's `V' = R × V` where `V = (Ai, Aj)` holds two
    /// attribute columns (§4.2, Pairwise-Attribute Distortion).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the slices differ in length.
    pub fn apply_columns(&self, xs: &mut [f64], ys: &mut [f64]) -> Result<()> {
        if xs.len() != ys.len() {
            return Err(Error::DimensionMismatch {
                expected: format!("columns of equal length {}", xs.len()),
                found: format!("second column of length {}", ys.len()),
            });
        }
        let (s, c) = self.theta.sin_cos();
        for (x, y) in xs.iter_mut().zip(ys.iter_mut()) {
            let nx = *x * c + *y * s;
            let ny = -*x * s + *y * c;
            *x = nx;
            *y = ny;
        }
        Ok(())
    }

    /// The inverse rotation (counter-clockwise by the same angle).
    pub fn inverse(&self) -> Rotation2 {
        Rotation2 { theta: -self.theta }
    }

    /// Composition: applying `self` after `other` (angles add).
    pub fn compose(&self, other: &Rotation2) -> Rotation2 {
        Rotation2 {
            theta: self.theta + other.theta,
        }
    }

    /// The 2×2 matrix of Eq. (1).
    pub fn as_matrix(&self) -> Matrix {
        let (s, c) = self.theta.sin_cos();
        Matrix::from_rows(&[&[c, s], &[-s, c]]).expect("2x2 literal is well-formed")
    }
}

/// A 2-D reflection across the line through the origin at angle φ
/// (measured counter-clockwise from the x-axis).
///
/// Reflections are the third isometry class the paper lists (§3.1,
/// alongside translations and rotations): they preserve distances but
/// reverse orientation (`det = −1`), and every reflection is an involution
/// (its own inverse). The matrix is
///
/// ```text
/// F(φ) = [ cos2φ   sin2φ ]
///        [ sin2φ  −cos2φ ]
/// ```
///
/// # Example
///
/// ```
/// use rbt_linalg::rotation::Reflection2;
///
/// // Reflection across the x-axis (φ = 0) negates y.
/// let f = Reflection2::from_degrees(0.0);
/// let (x, y) = f.apply_point(3.0, 4.0);
/// assert!((x - 3.0).abs() < 1e-12 && (y + 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reflection2 {
    /// Axis angle in radians (counter-clockwise from the x-axis).
    phi: f64,
}

impl Reflection2 {
    /// Reflection across the line at `degrees` from the x-axis.
    pub fn from_degrees(degrees: f64) -> Self {
        Reflection2 {
            phi: degrees.to_radians(),
        }
    }

    /// Reflection across the line at `radians` from the x-axis.
    pub fn from_radians(radians: f64) -> Self {
        Reflection2 { phi: radians }
    }

    /// The axis angle in degrees (as constructed; not normalised).
    pub fn degrees(&self) -> f64 {
        self.phi.to_degrees()
    }

    /// `cos 2φ`.
    #[inline]
    pub fn cos2(&self) -> f64 {
        (2.0 * self.phi).cos()
    }

    /// `sin 2φ`.
    #[inline]
    pub fn sin2(&self) -> f64 {
        (2.0 * self.phi).sin()
    }

    /// Reflects a single point.
    #[inline]
    pub fn apply_point(&self, x: f64, y: f64) -> (f64, f64) {
        let (s, c) = (2.0 * self.phi).sin_cos();
        (x * c + y * s, x * s - y * c)
    }

    /// Reflects two equal-length coordinate vectors in place.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the slices differ in length.
    pub fn apply_columns(&self, xs: &mut [f64], ys: &mut [f64]) -> Result<()> {
        if xs.len() != ys.len() {
            return Err(Error::DimensionMismatch {
                expected: format!("columns of equal length {}", xs.len()),
                found: format!("second column of length {}", ys.len()),
            });
        }
        let (s, c) = (2.0 * self.phi).sin_cos();
        for (x, y) in xs.iter_mut().zip(ys.iter_mut()) {
            let nx = *x * c + *y * s;
            let ny = *x * s - *y * c;
            *x = nx;
            *y = ny;
        }
        Ok(())
    }

    /// The 2×2 reflection matrix.
    pub fn as_matrix(&self) -> Matrix {
        let (s, c) = (2.0 * self.phi).sin_cos();
        Matrix::from_rows(&[&[c, s], &[s, -c]]).expect("2x2 literal is well-formed")
    }
}

/// Builds the `n × n` Givens rotation acting clockwise by `rot` on the
/// coordinate pair `(i, j)` and as the identity elsewhere.
///
/// Composing the Givens matrices of each RBT step (in application order,
/// left-multiplied) yields the single orthogonal matrix the transformation
/// is equivalent to — which is what Theorem 2 (isometry) exploits and what
/// the PCA attack in `rbt-attack` tries to estimate.
///
/// # Errors
///
/// Returns [`Error::InvalidArgument`] if `i == j` and
/// [`Error::IndexOutOfBounds`] if either index is `>= n`.
pub fn givens(n: usize, i: usize, j: usize, rot: &Rotation2) -> Result<Matrix> {
    if i == j {
        return Err(Error::InvalidArgument(
            "Givens rotation requires two distinct coordinates".into(),
        ));
    }
    for &k in &[i, j] {
        if k >= n {
            return Err(Error::IndexOutOfBounds { index: k, bound: n });
        }
    }
    let mut g = Matrix::identity(n);
    let (s, c) = (rot.sin(), rot.cos());
    g[(i, i)] = c;
    g[(i, j)] = s;
    g[(j, i)] = -s;
    g[(j, j)] = c;
    Ok(g)
}

/// `true` if `m` is orthogonal within `tol` (`mᵀ m ≈ I`).
pub fn is_orthogonal(m: &Matrix, tol: f64) -> bool {
    if !m.is_square() {
        return false;
    }
    match m.transpose().matmul(m) {
        Ok(p) => p.approx_eq(&Matrix::identity(m.rows()), tol),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_matrix_layout() {
        let r = Rotation2::from_degrees(30.0);
        let m = r.as_matrix();
        assert!((m[(0, 0)] - 30f64.to_radians().cos()).abs() < 1e-12);
        assert!((m[(0, 1)] - 30f64.to_radians().sin()).abs() < 1e-12);
        assert!((m[(1, 0)] + 30f64.to_radians().sin()).abs() < 1e-12);
        assert!((m[(1, 1)] - 30f64.to_radians().cos()).abs() < 1e-12);
    }

    #[test]
    fn apply_point_matches_matrix() {
        let r = Rotation2::from_degrees(312.47);
        let (x, y) = r.apply_point(1.4809, -0.3476);
        let v = r.as_matrix().matvec(&[1.4809, -0.3476]).unwrap();
        assert!((x - v[0]).abs() < 1e-12);
        assert!((y - v[1]).abs() < 1e-12);
    }

    #[test]
    fn paper_first_rotation_heart_rate() {
        // Table 2 row 1237 rotated by θ=312.47° on (age, heart_rate):
        // heart_rate' = -sinθ·age + cosθ·hr ≈ 0.8577 (Table 3).
        let r = Rotation2::from_degrees(312.47);
        let (_, hr_prime) = r.apply_point(1.4809, -0.3476);
        assert!((hr_prime - 0.8577).abs() < 5e-4, "got {hr_prime}");
    }

    #[test]
    fn apply_columns_round_trip() {
        let r = Rotation2::from_degrees(123.4);
        let mut xs = vec![1.0, -2.0, 0.5];
        let mut ys = vec![0.0, 3.0, -1.5];
        let (ox, oy) = (xs.clone(), ys.clone());
        r.apply_columns(&mut xs, &mut ys).unwrap();
        r.inverse().apply_columns(&mut xs, &mut ys).unwrap();
        for (a, b) in xs.iter().zip(&ox) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in ys.iter().zip(&oy) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_columns_rejects_mismatch() {
        let r = Rotation2::from_degrees(10.0);
        let mut xs = vec![1.0, 2.0];
        let mut ys = vec![1.0];
        assert!(r.apply_columns(&mut xs, &mut ys).is_err());
    }

    #[test]
    fn rotation_preserves_norm() {
        let r = Rotation2::from_degrees(77.7);
        let (x, y) = r.apply_point(3.0, 4.0);
        assert!((x.hypot(y) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn compose_adds_angles() {
        let a = Rotation2::from_degrees(30.0);
        let b = Rotation2::from_degrees(12.0);
        let c = a.compose(&b);
        assert!((c.degrees() - 42.0).abs() < 1e-9);
        let p = a.as_matrix().matmul(&b.as_matrix()).unwrap();
        assert!(p.approx_eq(&c.as_matrix(), 1e-12));
    }

    #[test]
    fn givens_embeds_rotation() {
        let r = Rotation2::from_degrees(45.0);
        let g = givens(4, 1, 3, &r).unwrap();
        assert!(is_orthogonal(&g, 1e-12));
        assert_eq!(g[(0, 0)], 1.0);
        assert_eq!(g[(2, 2)], 1.0);
        assert!((g[(1, 1)] - r.cos()).abs() < 1e-12);
        assert!((g[(1, 3)] - r.sin()).abs() < 1e-12);
        assert!((g[(3, 1)] + r.sin()).abs() < 1e-12);
    }

    #[test]
    fn givens_validates_indices() {
        let r = Rotation2::from_degrees(1.0);
        assert!(givens(3, 1, 1, &r).is_err());
        assert!(givens(3, 0, 3, &r).is_err());
    }

    #[test]
    fn orthogonality_detection() {
        assert!(is_orthogonal(&Matrix::identity(5), 1e-12));
        assert!(is_orthogonal(
            &Rotation2::from_degrees(33.0).as_matrix(),
            1e-12
        ));
        let not = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        assert!(!is_orthogonal(&not, 1e-9));
        let rect = Matrix::zeros(2, 3);
        assert!(!is_orthogonal(&rect, 1e-9));
    }

    #[test]
    fn reflection_is_involution() {
        let f = Reflection2::from_degrees(37.3);
        let (x, y) = (1.7, -2.4);
        let (rx, ry) = f.apply_point(x, y);
        let (bx, by) = f.apply_point(rx, ry);
        assert!((bx - x).abs() < 1e-12 && (by - y).abs() < 1e-12);
    }

    #[test]
    fn reflection_preserves_norm_and_flips_orientation() {
        let f = Reflection2::from_degrees(61.2);
        let (x, y) = f.apply_point(3.0, 4.0);
        assert!((x.hypot(y) - 5.0).abs() < 1e-12);
        // det = −1.
        let m = f.as_matrix();
        let det = m[(0, 0)] * m[(1, 1)] - m[(0, 1)] * m[(1, 0)];
        assert!((det + 1.0).abs() < 1e-12);
        assert!(is_orthogonal(&m, 1e-12));
    }

    #[test]
    fn reflection_axis_is_fixed() {
        // Points on the axis are fixed by the reflection.
        let phi = 28.0f64;
        let f = Reflection2::from_degrees(phi);
        let (ax, ay) = (phi.to_radians().cos(), phi.to_radians().sin());
        let (rx, ry) = f.apply_point(3.0 * ax, 3.0 * ay);
        assert!((rx - 3.0 * ax).abs() < 1e-12);
        assert!((ry - 3.0 * ay).abs() < 1e-12);
    }

    #[test]
    fn reflection_columns_match_pointwise() {
        let f = Reflection2::from_degrees(123.4);
        let mut xs = vec![1.0, -2.0, 0.5];
        let mut ys = vec![0.0, 3.0, -1.5];
        let expected: Vec<(f64, f64)> = xs
            .iter()
            .zip(&ys)
            .map(|(&x, &y)| f.apply_point(x, y))
            .collect();
        f.apply_columns(&mut xs, &mut ys).unwrap();
        for (i, &(ex, ey)) in expected.iter().enumerate() {
            assert!((xs[i] - ex).abs() < 1e-12);
            assert!((ys[i] - ey).abs() < 1e-12);
        }
        let mut short = vec![1.0];
        assert!(f.apply_columns(&mut xs, &mut short).is_err());
    }

    #[test]
    fn degree_radian_round_trip() {
        let r = Rotation2::from_degrees(147.29);
        assert!((r.degrees() - 147.29).abs() < 1e-12);
        let r2 = Rotation2::from_radians(r.radians());
        assert_eq!(r, r2);
    }
}
