//! Distance metrics between objects (§3.3 of the paper).
//!
//! Euclidean distance (Eq. 6) and Manhattan distance (Eq. 7) are the two the
//! paper lists; Minkowski and Chebyshev complete the standard family. All of
//! them satisfy the four metric axioms the paper enumerates (non-negativity,
//! identity, symmetry, triangle inequality) — the crate's property tests
//! check these on random inputs.
//!
//! Only the Euclidean metric is invariant under rotation, which is why RBT
//! guarantees exact cluster preservation for Euclidean-based algorithms.
//! (Manhattan distance is *not* rotation-invariant; the experiment binaries
//! quantify the discrepancy.)

use std::fmt;

/// Supported distance metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub enum Metric {
    /// Euclidean (L2) distance — Eq. (6) of the paper.
    #[default]
    Euclidean,
    /// Squared Euclidean distance (avoids the square root; same ordering).
    SquaredEuclidean,
    /// Manhattan / city-block (L1) distance — Eq. (7) of the paper.
    Manhattan,
    /// Minkowski (Lp) distance with parameter `p >= 1`.
    Minkowski(f64),
    /// Chebyshev (L∞) distance.
    Chebyshev,
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::Euclidean => write!(f, "euclidean"),
            Metric::SquaredEuclidean => write!(f, "squared-euclidean"),
            Metric::Manhattan => write!(f, "manhattan"),
            Metric::Minkowski(p) => write!(f, "minkowski(p={p})"),
            Metric::Chebyshev => write!(f, "chebyshev"),
        }
    }
}

impl Metric {
    /// Distance between two points.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the slices differ in length; in release
    /// builds the shorter length is used (zip semantics). Callers inside the
    /// workspace always pass rows of the same matrix.
    #[inline]
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "distance between unequal-length points");
        match *self {
            Metric::Euclidean => squared_euclidean(a, b).sqrt(),
            Metric::SquaredEuclidean => squared_euclidean(a, b),
            Metric::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Metric::Minkowski(p) => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs().powf(p))
                .sum::<f64>()
                .powf(1.0 / p),
            Metric::Chebyshev => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        }
    }

    /// `true` for metrics invariant under orthogonal transformations
    /// (rotations/reflections). Only these give the exact cluster
    /// preservation of Corollary 1.
    pub fn is_rotation_invariant(&self) -> bool {
        matches!(self, Metric::Euclidean | Metric::SquaredEuclidean)
    }
}

#[inline]
fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rotation2;

    const P: [f64; 3] = [1.0, -2.0, 3.0];
    const Q: [f64; 3] = [4.0, 2.0, 3.0];

    #[test]
    fn euclidean_known() {
        // sqrt(9 + 16 + 0) = 5
        assert!((Metric::Euclidean.distance(&P, &Q) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn squared_euclidean_known() {
        assert!((Metric::SquaredEuclidean.distance(&P, &Q) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_known() {
        assert!((Metric::Manhattan.distance(&P, &Q) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_known() {
        assert!((Metric::Chebyshev.distance(&P, &Q) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn minkowski_interpolates() {
        // p=1 is Manhattan, p=2 is Euclidean.
        assert!(
            (Metric::Minkowski(1.0).distance(&P, &Q) - Metric::Manhattan.distance(&P, &Q)).abs()
                < 1e-12
        );
        assert!(
            (Metric::Minkowski(2.0).distance(&P, &Q) - Metric::Euclidean.distance(&P, &Q)).abs()
                < 1e-12
        );
        // Large p approaches Chebyshev.
        assert!(
            (Metric::Minkowski(64.0).distance(&P, &Q) - Metric::Chebyshev.distance(&P, &Q)).abs()
                < 0.1
        );
    }

    #[test]
    fn metric_axioms_on_fixed_points() {
        for m in [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Minkowski(3.0),
        ] {
            assert!(m.distance(&P, &Q) >= 0.0, "{m}: non-negative");
            assert_eq!(m.distance(&P, &P), 0.0, "{m}: identity");
            assert!(
                (m.distance(&P, &Q) - m.distance(&Q, &P)).abs() < 1e-12,
                "{m}: symmetry"
            );
            let r = [0.0, 0.0, 0.0];
            assert!(
                m.distance(&P, &Q) <= m.distance(&P, &r) + m.distance(&r, &Q) + 1e-12,
                "{m}: triangle inequality"
            );
        }
    }

    #[test]
    fn euclidean_is_rotation_invariant_manhattan_is_not() {
        assert!(Metric::Euclidean.is_rotation_invariant());
        assert!(Metric::SquaredEuclidean.is_rotation_invariant());
        assert!(!Metric::Manhattan.is_rotation_invariant());
        assert!(!Metric::Chebyshev.is_rotation_invariant());

        // Demonstrate the invariance (and its absence) numerically.
        let r = Rotation2::from_degrees(37.0);
        let (px, py) = (1.0, 2.0);
        let (qx, qy) = (-3.0, 0.5);
        let (pxr, pyr) = r.apply_point(px, py);
        let (qxr, qyr) = r.apply_point(qx, qy);
        let d_before = Metric::Euclidean.distance(&[px, py], &[qx, qy]);
        let d_after = Metric::Euclidean.distance(&[pxr, pyr], &[qxr, qyr]);
        assert!((d_before - d_after).abs() < 1e-12);
        let m_before = Metric::Manhattan.distance(&[px, py], &[qx, qy]);
        let m_after = Metric::Manhattan.distance(&[pxr, pyr], &[qxr, qyr]);
        assert!((m_before - m_after).abs() > 1e-3);
    }

    #[test]
    fn display_names() {
        assert_eq!(Metric::Euclidean.to_string(), "euclidean");
        assert_eq!(Metric::Minkowski(3.0).to_string(), "minkowski(p=3)");
    }
}
