//! Property-based tests for the linear-algebra substrate.
//!
//! These check the invariants the RBT method's correctness rests on:
//! rotations are isometries, metrics satisfy the metric axioms, the
//! eigendecomposition reconstructs its input, and solvers actually solve.

use proptest::prelude::*;
use rbt_linalg::dissimilarity::DissimilarityMatrix;
use rbt_linalg::distance::Metric;
use rbt_linalg::eigen::symmetric_eigen;
use rbt_linalg::kernels;
use rbt_linalg::matrix::{apply_steps_in_rows, rotate_pair_in_rows};
use rbt_linalg::rotation::{givens, is_orthogonal};
use rbt_linalg::solve::{invert, solve};
use rbt_linalg::stats::{covariance, mean, variance, variance_of_difference};
use rbt_linalg::{Matrix, Rotation2, VarianceMode};

fn vec_pair(len: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    len.prop_flat_map(|n| {
        (
            prop::collection::vec(-100.0..100.0f64, n),
            prop::collection::vec(-100.0..100.0f64, n),
        )
    })
}

fn small_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-50.0..50.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rotation_is_isometry(theta in -720.0..720.0f64, (xs, ys) in vec_pair(1..=32)) {
        let r = Rotation2::from_degrees(theta);
        let mut xr = xs.clone();
        let mut yr = ys.clone();
        r.apply_columns(&mut xr, &mut yr).unwrap();
        // Pairwise 2-D point norms are preserved.
        for i in 0..xs.len() {
            let before = xs[i].hypot(ys[i]);
            let after = xr[i].hypot(yr[i]);
            prop_assert!((before - after).abs() < 1e-8 * (1.0 + before));
        }
    }

    #[test]
    fn rotation_inverse_round_trips(theta in -360.0..360.0f64, (xs, ys) in vec_pair(1..=16)) {
        let r = Rotation2::from_degrees(theta);
        let mut xr = xs.clone();
        let mut yr = ys.clone();
        r.apply_columns(&mut xr, &mut yr).unwrap();
        r.inverse().apply_columns(&mut xr, &mut yr).unwrap();
        for (a, b) in xr.iter().zip(&xs) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
        for (a, b) in yr.iter().zip(&ys) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn rotation_matrix_is_orthogonal(theta in -360.0..360.0f64) {
        prop_assert!(is_orthogonal(&Rotation2::from_degrees(theta).as_matrix(), 1e-10));
    }

    #[test]
    fn givens_matrix_is_orthogonal(theta in -360.0..360.0f64, n in 2usize..8, seed in 0usize..100) {
        let i = seed % n;
        let j = (seed / n + 1 + i) % n;
        prop_assume!(i != j);
        let g = givens(n, i, j, &Rotation2::from_degrees(theta)).unwrap();
        prop_assert!(is_orthogonal(&g, 1e-10));
    }

    #[test]
    fn metric_axioms((xs, ys) in vec_pair(1..=16)) {
        for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev, Metric::Minkowski(3.0)] {
            let d_xy = metric.distance(&xs, &ys);
            let d_yx = metric.distance(&ys, &xs);
            prop_assert!(d_xy >= 0.0);
            prop_assert!((d_xy - d_yx).abs() < 1e-9 * (1.0 + d_xy));
            prop_assert!(metric.distance(&xs, &xs) == 0.0);
        }
    }

    #[test]
    fn triangle_inequality((xs, ys) in vec_pair(2..=8), zs_seed in prop::collection::vec(-100.0..100.0f64, 8)) {
        let zs: Vec<f64> = xs.iter().enumerate().map(|(i, _)| zs_seed[i % zs_seed.len()]).collect();
        for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
            let direct = metric.distance(&xs, &ys);
            let via = metric.distance(&xs, &zs) + metric.distance(&zs, &ys);
            prop_assert!(direct <= via + 1e-9 * (1.0 + via));
        }
    }

    #[test]
    fn variance_is_translation_invariant(xs in prop::collection::vec(-100.0..100.0f64, 2..32), shift in -1e3..1e3f64) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        for mode in [VarianceMode::Population, VarianceMode::Sample] {
            let v0 = variance(&xs, mode).unwrap();
            let v1 = variance(&shifted, mode).unwrap();
            prop_assert!((v0 - v1).abs() < 1e-6 * (1.0 + v0.abs()));
        }
    }

    #[test]
    fn variance_scales_quadratically(xs in prop::collection::vec(-100.0..100.0f64, 2..32), k in -10.0..10.0f64) {
        let scaled: Vec<f64> = xs.iter().map(|x| k * x).collect();
        let v0 = variance(&xs, VarianceMode::Sample).unwrap();
        let v1 = variance(&scaled, VarianceMode::Sample).unwrap();
        prop_assert!((v1 - k * k * v0).abs() < 1e-6 * (1.0 + v1.abs()));
    }

    #[test]
    fn var_of_difference_expansion((xs, ys) in vec_pair(2..=32)) {
        // Var(X−Y) = Var(X) + Var(Y) − 2 Cov(X,Y), any divisor.
        for mode in [VarianceMode::Population, VarianceMode::Sample] {
            let lhs = variance_of_difference(&xs, &ys, mode).unwrap();
            let rhs = variance(&xs, mode).unwrap() + variance(&ys, mode).unwrap()
                - 2.0 * covariance(&xs, &ys, mode).unwrap();
            prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + lhs.abs()));
        }
    }

    #[test]
    fn mean_within_bounds(xs in prop::collection::vec(-100.0..100.0f64, 1..64)) {
        let m = mean(&xs).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn dissimilarity_parallel_equals_serial(m in small_matrix(80, 5), threads in 2usize..6) {
        let serial = DissimilarityMatrix::from_matrix(&m, Metric::Euclidean);
        let parallel = DissimilarityMatrix::from_matrix_parallel(&m, Metric::Euclidean, threads);
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn kernel_distances_match_scalar_metric((xs, ys) in vec_pair(1..=48)) {
        // The unrolled kernels reorder the accumulation (four independent
        // partial sums), so they agree with the scalar fold to relative
        // 1e-12, not bit-for-bit.
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0);
        prop_assert!(close(
            kernels::squared_euclidean(&xs, &ys),
            Metric::SquaredEuclidean.distance(&xs, &ys)
        ));
        prop_assert!(close(
            kernels::euclidean(&xs, &ys),
            Metric::Euclidean.distance(&xs, &ys)
        ));
        prop_assert!(close(
            kernels::manhattan(&xs, &ys),
            Metric::Manhattan.distance(&xs, &ys)
        ));
    }

    #[test]
    fn block_kernel_matches_per_pair_kernel(m in small_matrix(24, 9), q in 0usize..24) {
        // The fused row-to-block kernel preserves the per-pair summation
        // order, so it matches the pairwise kernel exactly.
        let q = q % m.rows();
        let query = m.row(q).to_vec();
        for metric in [Metric::Euclidean, Metric::SquaredEuclidean, Metric::Manhattan] {
            let mut out = vec![0.0; m.rows()];
            kernels::distances_to_block(metric, &query, m.as_slice(), m.cols(), &mut out);
            for (r, &d) in out.iter().enumerate() {
                prop_assert_eq!(d, kernels::distance(metric, &query, m.row(r)));
            }
        }
    }

    #[test]
    fn blocked_matmul_equals_naive(r in 1usize..10, c in 1usize..6, seed in 0u64..1000) {
        // k > 512 forces the tiled path (smaller shapes dispatch straight
        // to the naive loops). The blocked product visits k monotonically
        // per output element, so it is bit-for-bit the naive i-k-j product.
        let k = 513 + (seed as usize % 100);
        let a = Matrix::from_vec(
            r,
            k,
            (0..r * k).map(|t| ((t as f64) * 0.61).sin() * 10.0).collect(),
        ).unwrap();
        let b = Matrix::from_vec(
            k,
            c,
            (0..k * c).map(|t| ((t as f64) + seed as f64).sin() * 10.0).collect(),
        ).unwrap();
        prop_assert_eq!(a.matmul(&b).unwrap(), a.matmul_naive(&b).unwrap());
    }

    #[test]
    fn fused_column_rotation_equals_extract_writeback(
        m in small_matrix(30, 6),
        theta in -360.0..360.0f64,
        pick in 0usize..30,
    ) {
        prop_assume!(m.cols() >= 2);
        let i = pick % m.cols();
        let j = (i + 1 + pick / m.cols()) % m.cols();
        prop_assume!(i != j);
        let rot = Rotation2::from_degrees(theta);
        let (s, c) = rot.radians().sin_cos();
        let mut fused = m.clone();
        fused.rotate_column_pair(i, j, c, s).unwrap();
        let mut reference = m.clone();
        let mut xs = reference.column(i);
        let mut ys = reference.column(j);
        rot.apply_columns(&mut xs, &mut ys).unwrap();
        reference.set_column(i, &xs).unwrap();
        reference.set_column(j, &ys).unwrap();
        prop_assert_eq!(fused, reference); // bit-for-bit
    }

    #[test]
    fn dissimilarity_dense_round_trip(m in small_matrix(20, 4)) {
        let dm = DissimilarityMatrix::from_matrix(&m, Metric::Euclidean);
        let dense = dm.to_dense();
        for i in 0..m.rows() {
            for j in 0..m.rows() {
                prop_assert_eq!(dense[(i, j)], dm.get(i, j));
            }
        }
    }

    #[test]
    fn fused_sweep_is_bitwise_sequential(
        m in small_matrix(16, 8),
        raw_steps in prop::collection::vec((0usize..64, 0usize..64, -360.0..360.0f64), 0..12),
    ) {
        // One fused pass applying every step per row must match applying
        // the steps one whole-matrix sweep at a time, bit for bit — the
        // rotations are row-local and the per-row step order is preserved.
        let n_cols = m.cols();
        let steps: Vec<(usize, usize, f64, f64)> = raw_steps
            .iter()
            .filter_map(|&(a, b, theta)| {
                let (i, j) = (a % n_cols, b % n_cols);
                if i == j {
                    return None;
                }
                let (s, c) = theta.to_radians().sin_cos();
                Some((i, j, c, s))
            })
            .collect();
        let mut fused = m.as_slice().to_vec();
        apply_steps_in_rows(&mut fused, n_cols, &steps);
        let mut seq = m.as_slice().to_vec();
        for &(i, j, c, s) in &steps {
            rotate_pair_in_rows(&mut seq, n_cols, i, j, c, s);
        }
        for (a, b) in fused.iter().zip(&seq) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn transpose_preserves_frobenius(m in small_matrix(12, 12)) {
        prop_assert!((m.frobenius_norm() - m.transpose().frobenius_norm()).abs() < 1e-9);
    }

    #[test]
    fn matmul_associates_with_identity(m in small_matrix(10, 10)) {
        let id = Matrix::identity(m.cols());
        prop_assert!(m.matmul(&id).unwrap().approx_eq(&m, 1e-12));
    }

    #[test]
    fn eigen_reconstructs_symmetric(vals in prop::collection::vec(-10.0..10.0f64, 9)) {
        // Build a symmetric matrix A = B + Bᵀ from random B.
        let b = Matrix::from_vec(3, 3, vals).unwrap();
        let a = {
            let bt = b.transpose();
            let mut s = Matrix::zeros(3, 3);
            for i in 0..3 {
                for j in 0..3 {
                    s[(i, j)] = b[(i, j)] + bt[(i, j)];
                }
            }
            s
        };
        let e = symmetric_eigen(&a).unwrap();
        prop_assert!(is_orthogonal(&e.eigenvectors, 1e-8));
        let mut lam = Matrix::zeros(3, 3);
        for i in 0..3 {
            lam[(i, i)] = e.eigenvalues[i];
        }
        let rec = e.eigenvectors.matmul(&lam).unwrap().matmul(&e.eigenvectors.transpose()).unwrap();
        prop_assert!(rec.approx_eq(&a, 1e-7 * (1.0 + a.frobenius_norm())));
    }

    #[test]
    fn solve_then_multiply_recovers_rhs(vals in prop::collection::vec(-5.0..5.0f64, 9), rhs in prop::collection::vec(-5.0..5.0f64, 3)) {
        let mut a = Matrix::from_vec(3, 3, vals).unwrap();
        // Diagonal dominance ⇒ nonsingular.
        for i in 0..3 {
            a[(i, i)] += 20.0;
        }
        let x = solve(&a, &rhs).unwrap();
        let back = a.matvec(&x).unwrap();
        for (b, r) in back.iter().zip(&rhs) {
            prop_assert!((b - r).abs() < 1e-8 * (1.0 + r.abs()));
        }
    }

    #[test]
    fn invert_twice_is_identity_like(vals in prop::collection::vec(-5.0..5.0f64, 16)) {
        let mut a = Matrix::from_vec(4, 4, vals).unwrap();
        for i in 0..4 {
            a[(i, i)] += 25.0;
        }
        let inv = invert(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        prop_assert!(prod.approx_eq(&Matrix::identity(4), 1e-8));
    }
}
