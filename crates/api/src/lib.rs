//! # rbt-api — one release API to rule them all
//!
//! The paper's Corollary 1 makes RBT a drop-in release method for *any*
//! distance-based clustering; §5.2 benchmarks it against additive noise,
//! rank swapping, and geometric perturbation. This crate is the **service
//! boundary** that makes those methods interchangeable — the layer the
//! outsourced-clustering workloads (multi-user / multi-server k-means over
//! a stable owner-side transformation) program against:
//!
//! * [`PrivacyTransform`] / [`FittedTransform`] — the object-safe method
//!   interface: fit once, transform batch after batch, invert when the
//!   method supports it, persist through the sealed `RBTS` envelope;
//! * [`Method`] — the name registry (`rbt`, `hybrid-isometry`, `noise`,
//!   `swap`, `geometric`) behind the CLI and the bench harness;
//! * [`Release`] — the typed-state builder and blessed entry point:
//!   `Release::of(&data).with_method(Method::Rbt).with_thresholds(pst)
//!   .fit(&mut rng)`; forgetting the method is a compile error;
//! * [`RbtError`] — the workspace-wide error taxonomy, grouped by remedy
//!   and mapped to distinct CLI exit codes.
//!
//! RBT through this layer wraps the existing
//! [`Pipeline`](rbt_core::Pipeline) and
//! [`ReleaseSession`](rbt_core::ReleaseSession) unchanged, so its releases
//! and key files are bit-identical to the direct paths (pinned by the
//! conformance tests).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod methods;
pub mod release;
pub mod transform_api;

pub use error::{RbtError, Result};
pub use methods::{
    decode_fitted, FittedBaseline, FittedHybridIsometry, FittedRbt, GeometricMethod,
    HybridIsometryMethod, Method, NoiseMethod, RbtMethod, SwapMethod,
};
pub use release::{FittedRelease, Release, ReleaseBuilder};
pub use transform_api::{FitOutput, FittedTransform, MethodProperties, PrivacyTransform};
