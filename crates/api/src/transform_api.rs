//! The object-safe release interface every privacy method implements.
//!
//! The paper's Corollary 1 claims RBT is a drop-in release method for *any*
//! distance-based clustering — and §5.2 benchmarks it against the noise,
//! swapping, and geometric baselines. This module gives all of those one
//! service boundary:
//!
//! * [`PrivacyTransform`] — an **unfitted method**: a name, a
//!   [`MethodProperties`] descriptor, and [`fit`](PrivacyTransform::fit),
//!   which consumes a dataset plus randomness and produces the initial
//!   release alongside a fitted, reusable transform;
//! * [`FittedTransform`] — the **fitted state**: batch-wise
//!   [`transform_batch`](FittedTransform::transform_batch) /
//!   [`invert_batch`](FittedTransform::invert_batch) (inversion is
//!   `Err(`[`RbtError::NotInvertible`](crate::RbtError::NotInvertible)`)`
//!   for the baselines), and a
//!   [`to_bytes`](FittedTransform::to_bytes) codec hook that rides the
//!   sealed `RBTS` envelope of [`rbt_core::codec`].
//!
//! Both traits are dyn-compatible: the CLI, the bench harness, and the
//! [`Release`](crate::Release) builder all hold `Box<dyn …>` and select
//! methods by name through the [`Method`](crate::Method) registry. The
//! randomness parameter is `&mut dyn RngCore` for the same reason — seeded
//! reproducibility without a generic signature.

use crate::error::Result;
use rand::RngCore;
use rbt_data::Dataset;
use std::any::Any;
use std::fmt;

/// What a method guarantees, and what breaking it would cost an attacker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodProperties {
    /// Whether the method preserves all pairwise distances exactly
    /// (Theorem 2 / Corollary 1: clustering results are identical on the
    /// release). The noise/swap/geometric baselines trade this away.
    pub isometric: bool,
    /// Whether the fitted state can undo its own releases
    /// ([`FittedTransform::invert_batch`]).
    pub invertible: bool,
    /// Whether the method accepts pairwise-security thresholds (the §4.2
    /// PST knob). Baselines tune privacy through their own parameters.
    pub tunable_thresholds: bool,
    /// A coarse lower-bound estimate, in bits, of the §5.2 brute-force
    /// keyspace an attacker must search (angle discretization only;
    /// pairing/order uncertainty makes the true space larger). `None`
    /// before fitting, or for methods whose security is not key-based.
    pub keyspace_bits: Option<f64>,
}

impl fmt::Display for MethodProperties {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "isometric={} invertible={} thresholds={}",
            self.isometric, self.invertible, self.tunable_thresholds
        )?;
        if let Some(bits) = self.keyspace_bits {
            write!(f, " keyspace≥2^{bits:.0}")?;
        }
        Ok(())
    }
}

/// An unfitted privacy-preserving release method.
///
/// Implementations must be deterministic given the RNG stream, so a seeded
/// run reproduces its release bit for bit.
pub trait PrivacyTransform {
    /// The registry name (`rbt`, `hybrid-isometry`, `noise`, `swap`,
    /// `geometric`).
    fn name(&self) -> &'static str;

    /// The method's capability descriptor. `keyspace_bits` is `None`
    /// before fitting (it depends on the fitted key size).
    fn properties(&self) -> MethodProperties;

    /// Fits the method to a dataset: derives whatever owner-side secrets
    /// it needs (normalization statistics, rotation keys, perturbation
    /// draws) and produces the initial release of that same data.
    ///
    /// # Errors
    ///
    /// * [`RbtError::InfeasibleThreshold`](crate::RbtError::InfeasibleThreshold)
    ///   when a security threshold cannot be met at any angle,
    /// * [`RbtError::InvalidConfig`](crate::RbtError::InvalidConfig) for
    ///   parameters incompatible with the data (too few columns, NaNs, …),
    /// * [`RbtError::DimensionMismatch`](crate::RbtError::DimensionMismatch)
    ///   for internal shape disagreements.
    fn fit(&self, data: &Dataset, rng: &mut dyn RngCore) -> Result<FitOutput>;
}

/// Everything [`PrivacyTransform::fit`] produces.
pub struct FitOutput {
    /// The initial release: the fitting data transformed under the freshly
    /// drawn secrets (ID-suppressed per the method's configuration).
    pub released: Dataset,
    /// The fitted, reusable transform for out-of-sample batches.
    pub fitted: Box<dyn FittedTransform>,
}

/// A fitted privacy transform: owner-side secrets bound to a fixed
/// attribute layout, applicable to batch after batch of arriving records.
pub trait FittedTransform: Send {
    /// The registry name of the method that produced this state.
    fn method_name(&self) -> &'static str;

    /// The capability descriptor, now including the fitted
    /// [`keyspace_bits`](MethodProperties::keyspace_bits) estimate where
    /// the method has one.
    fn properties(&self) -> MethodProperties;

    /// Number of attributes (columns) this state was fitted for.
    fn n_attributes(&self) -> usize;

    /// Transforms a batch of out-of-sample records under the fitted
    /// secrets.
    ///
    /// # Errors
    ///
    /// [`RbtError::DimensionMismatch`](crate::RbtError::DimensionMismatch)
    /// when the batch's column count disagrees with the fitted layout.
    fn transform_batch(&mut self, batch: &Dataset) -> Result<Dataset>;

    /// Owner-side inverse: recovers the pre-release values of a released
    /// batch.
    ///
    /// # Errors
    ///
    /// * [`RbtError::NotInvertible`](crate::RbtError::NotInvertible) for
    ///   methods without an inverse (the baselines),
    /// * [`RbtError::DimensionMismatch`](crate::RbtError::DimensionMismatch)
    ///   on a column-count disagreement.
    fn invert_batch(&self, released: &Dataset) -> Result<Dataset>;

    /// Serializes the fitted state into the sealed, checksummed `RBTS`
    /// envelope of [`rbt_core::codec`] — RBT states use the existing
    /// session record (readable by every session consumer), other methods
    /// the name-tagged method record. Decode with
    /// [`decode_fitted`](crate::decode_fitted).
    ///
    /// # Errors
    ///
    /// [`RbtError::Codec`](crate::RbtError::Codec) when the state has no
    /// stable encoding (cannot occur for the shipped methods).
    fn to_bytes(&self) -> Result<Vec<u8>>;

    /// Upcast hook for callers that need the concrete fitted type (e.g.
    /// the RBT [`ReleaseSession`](rbt_core::ReleaseSession) behind
    /// [`FittedRelease::session`](crate::FittedRelease::session)).
    fn as_any(&self) -> &dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traits_are_dyn_compatible() {
        // Compile-time check: both traits box.
        fn _takes_boxed(_: Box<dyn PrivacyTransform>, _: Box<dyn FittedTransform>) {}
    }

    #[test]
    fn properties_display_is_compact() {
        let p = MethodProperties {
            isometric: true,
            invertible: true,
            tunable_thresholds: true,
            keyspace_bits: Some(371.2),
        };
        let s = p.to_string();
        assert!(s.contains("isometric=true"));
        assert!(s.contains("keyspace≥2^371"));
        let q = MethodProperties {
            isometric: false,
            invertible: false,
            tunable_thresholds: false,
            keyspace_bits: None,
        };
        assert!(!q.to_string().contains("keyspace"));
    }
}
