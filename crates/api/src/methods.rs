//! The method registry: every shipped privacy transform behind one name.
//!
//! [`Method`] enumerates the five release methods the workspace ships —
//! RBT itself, the rotation/reflection [`HybridIsometry`] extension, and
//! the three §5.2 baselines (additive noise, rank swapping, geometric
//! perturbation). [`Method::from_name`] resolves CLI / config strings, and
//! [`Method::default_transform`] constructs a ready-to-fit
//! [`PrivacyTransform`] with that method's documented defaults. The
//! concrete transform types ([`RbtMethod`], [`HybridIsometryMethod`],
//! [`NoiseMethod`], [`SwapMethod`], [`GeometricMethod`]) are public too,
//! for callers that want non-default parameters.
//!
//! Fitted states persist through [`FittedTransform::to_bytes`] and come
//! back through [`decode_fitted`]: RBT rides the existing session record
//! (so its key files stay readable by `rbt-cli transform`/`invert` and
//! every other session consumer), the rest ride the name-tagged
//! [`RecordKind::Method`] record of the same sealed envelope.

use crate::error::{RbtError, Result};
use crate::transform_api::{FitOutput, FittedTransform, MethodProperties, PrivacyTransform};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rbt_core::codec::{open_envelope, seal_envelope, CodecError, RecordKind, MAGIC};
use rbt_core::reflection::{HybridIsometry, IsometryKey, IsometryStep};
use rbt_core::security::DEFAULT_GRID;
use rbt_core::{Pipeline, RbtConfig, ReleaseSession};
use rbt_data::{Dataset, FittedNormalizer, Normalization};
use rbt_linalg::codec::{ByteReader, ByteWriter};
use rbt_transform::{AdditiveNoise, HybridPerturbation, NoiseKind, Perturbation, RankSwap};
use std::any::Any;

/// A registered release method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Method {
    /// Rotation-Based Transformation — the paper's contribution.
    Rbt,
    /// The rotation/reflection hybrid isometry (§3.1 completed).
    HybridIsometry,
    /// Additive i.i.d. noise (`Y = X + e`), the statistical-DB baseline.
    Noise,
    /// Rank swapping within a bounded window.
    Swap,
    /// The geometric (translate/scale/rotate per pair) GDTM baseline.
    Geometric,
}

impl Method {
    /// Every registered method, in registry order.
    pub const ALL: [Method; 5] = [
        Method::Rbt,
        Method::HybridIsometry,
        Method::Noise,
        Method::Swap,
        Method::Geometric,
    ];

    /// The canonical registry name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Rbt => "rbt",
            Method::HybridIsometry => "hybrid-isometry",
            Method::Noise => "noise",
            Method::Swap => "swap",
            Method::Geometric => "geometric",
        }
    }

    /// A one-line description for `rbt-cli methods` and docs.
    pub fn description(self) -> &'static str {
        match self {
            Method::Rbt => {
                "rotation-based transformation: isometric, invertible, PST-tunable (the paper)"
            }
            Method::HybridIsometry => {
                "per-pair coin flip between rotation and reflection: isometric, invertible, \
                 +1 key bit per pair"
            }
            Method::Noise => "additive Gaussian noise Y = X + e: privacy/accuracy trade-off",
            Method::Swap => "rank swapping within a window: exact marginals, broken structure",
            Method::Geometric => {
                "translate/scale/rotate per attribute pair (GDTM): the authors' prior baseline"
            }
        }
    }

    /// Resolves a method by name. Canonical names and common aliases are
    /// accepted, case-insensitively.
    ///
    /// # Errors
    ///
    /// Returns [`RbtError::UnknownMethod`] for anything else.
    pub fn from_name(name: &str) -> Result<Method> {
        match name.to_ascii_lowercase().as_str() {
            "rbt" | "rotation" | "rotation-based" => Ok(Method::Rbt),
            "hybrid-isometry" | "hybrid" | "isometry" => Ok(Method::HybridIsometry),
            "noise" | "additive-noise" | "gaussian" => Ok(Method::Noise),
            "swap" | "rank-swap" | "swapping" => Ok(Method::Swap),
            "geometric" | "gdtm" => Ok(Method::Geometric),
            _ => Err(RbtError::UnknownMethod { name: name.into() }),
        }
    }

    /// Constructs the method's transform with its documented defaults:
    /// RBT/hybrid with a uniform PST of 0.3 and the paper's z-score
    /// normalization, Gaussian noise at level 0.3, a 0.2 rank-swap window,
    /// and the default geometric hybrid. The
    /// [`Release`](crate::Release) builder starts from these same
    /// defaults (the constructors below are shared).
    pub fn default_transform(self) -> Box<dyn PrivacyTransform> {
        match self {
            Method::Rbt => Box::new(RbtMethod::new(default_rbt_config())),
            Method::HybridIsometry => Box::new(HybridIsometryMethod::new(default_rbt_config())),
            Method::Noise => Box::new(NoiseMethod::new(default_noise())),
            Method::Swap => Box::new(SwapMethod::new(default_swap())),
            Method::Geometric => Box::new(GeometricMethod::new(HybridPerturbation::default())),
        }
    }
}

/// The registry default for RBT/hybrid: a uniform PST of 0.3, sequential
/// pairing, paper variance mode (shared by [`Method::default_transform`]
/// and the [`Release`](crate::Release) builder, so the documented defaults
/// cannot drift apart).
pub(crate) fn default_rbt_config() -> RbtConfig {
    RbtConfig::uniform(
        rbt_core::PairwiseSecurityThreshold::uniform(0.3)
            .expect("0.3 is a valid threshold constant"),
    )
}

/// The registry default noise distribution: Gaussian at level 0.3.
pub(crate) fn default_noise() -> AdditiveNoise {
    AdditiveNoise::gaussian(0.3).expect("0.3 is a valid noise level constant")
}

/// The registry default rank-swap window: 0.2.
pub(crate) fn default_swap() -> RankSwap {
    RankSwap::new(0.2).expect("0.2 is a valid window constant")
}

/// Coarse keyspace estimate for an angle-keyed method: `steps` angles each
/// drawn from a `grid`-position security-range discretization, plus
/// `extra_bits_per_step` (the hybrid's rotation/reflection coin). A lower
/// bound — pairing and order uncertainty only enlarge the space.
fn angle_keyspace_bits(steps: usize, grid: usize, extra_bits_per_step: f64) -> Option<f64> {
    if steps == 0 {
        return None;
    }
    Some(steps as f64 * ((grid.max(2) as f64).log2() + extra_bits_per_step))
}

/// Builds the released dataset for a transformed matrix: named columns
/// always survive, object IDs only when `suppress_ids` is off (§5.3 Step 2).
fn released_dataset(
    matrix: rbt_linalg::Matrix,
    source: &Dataset,
    suppress_ids: bool,
) -> Result<Dataset> {
    let mut out = Dataset::new(matrix, source.columns().to_vec())?;
    if !suppress_ids {
        if let Some(ids) = source.ids() {
            out = out.with_ids(ids.to_vec())?;
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// RBT
// ---------------------------------------------------------------------------

/// The paper's RBT as a [`PrivacyTransform`]: normalize → rotate pairs
/// under security thresholds → release. Fitting wraps the existing
/// [`Pipeline`] + [`ReleaseSession`] machinery, so releases through this
/// interface are **bit-identical** to the direct path.
#[derive(Debug, Clone)]
pub struct RbtMethod {
    config: RbtConfig,
    normalization: Normalization,
    suppress_ids: bool,
}

impl RbtMethod {
    /// Creates the method with the paper's z-score normalization and ID
    /// suppression on.
    pub fn new(config: RbtConfig) -> Self {
        RbtMethod {
            config,
            normalization: Normalization::zscore_paper(),
            suppress_ids: true,
        }
    }

    /// Replaces the normalization step.
    pub fn with_normalization(mut self, normalization: Normalization) -> Self {
        self.normalization = normalization;
        self
    }

    /// Controls §5.3 ID suppression on releases (`true` by default).
    pub fn with_id_suppression(mut self, suppress: bool) -> Self {
        self.suppress_ids = suppress;
        self
    }
}

impl PrivacyTransform for RbtMethod {
    fn name(&self) -> &'static str {
        "rbt"
    }

    fn properties(&self) -> MethodProperties {
        MethodProperties {
            isometric: true,
            invertible: true,
            tunable_thresholds: true,
            keyspace_bits: None,
        }
    }

    fn fit(&self, data: &Dataset, rng: &mut dyn RngCore) -> Result<FitOutput> {
        let out = Pipeline::new(self.config.clone())
            .with_normalization(self.normalization)
            .with_id_suppression(self.suppress_ids)
            .run(data, rng)?;
        let session = ReleaseSession::from_pipeline_output(&out)?
            .with_config(self.config.clone())
            .with_id_suppression(self.suppress_ids);
        Ok(FitOutput {
            released: out.released,
            fitted: Box::new(FittedRbt { session }),
        })
    }
}

/// A fitted RBT state: a [`ReleaseSession`] behind the object-safe
/// interface.
#[derive(Debug, Clone)]
pub struct FittedRbt {
    session: ReleaseSession,
}

impl FittedRbt {
    /// Wraps an existing session (e.g. one decoded from a key file).
    pub fn from_session(session: ReleaseSession) -> Self {
        FittedRbt { session }
    }

    /// The underlying release session.
    pub fn session(&self) -> &ReleaseSession {
        &self.session
    }
}

impl FittedTransform for FittedRbt {
    fn method_name(&self) -> &'static str {
        "rbt"
    }

    fn properties(&self) -> MethodProperties {
        let grid = self
            .session
            .config()
            .map_or(DEFAULT_GRID, |c| c.solver_grid);
        MethodProperties {
            isometric: true,
            invertible: true,
            tunable_thresholds: true,
            keyspace_bits: angle_keyspace_bits(self.session.key().steps().len(), grid, 0.0),
        }
    }

    fn n_attributes(&self) -> usize {
        self.session.key().n_attributes()
    }

    fn transform_batch(&mut self, batch: &Dataset) -> Result<Dataset> {
        Ok(self.session.transform_batch(batch)?.released)
    }

    fn invert_batch(&self, released: &Dataset) -> Result<Dataset> {
        Ok(self.session.invert_batch(released)?)
    }

    fn to_bytes(&self) -> Result<Vec<u8>> {
        Ok(self.session.to_bytes())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// Hybrid isometry
// ---------------------------------------------------------------------------

/// The rotation/reflection hybrid as a [`PrivacyTransform`]: same
/// normalization and threshold machinery as RBT, one extra key bit per
/// pair.
#[derive(Debug, Clone)]
pub struct HybridIsometryMethod {
    config: RbtConfig,
    normalization: Normalization,
    suppress_ids: bool,
}

impl HybridIsometryMethod {
    /// Creates the method with the paper's z-score normalization and ID
    /// suppression on.
    pub fn new(config: RbtConfig) -> Self {
        HybridIsometryMethod {
            config,
            normalization: Normalization::zscore_paper(),
            suppress_ids: true,
        }
    }

    /// Replaces the normalization step.
    pub fn with_normalization(mut self, normalization: Normalization) -> Self {
        self.normalization = normalization;
        self
    }

    /// Controls §5.3 ID suppression on releases (`true` by default).
    pub fn with_id_suppression(mut self, suppress: bool) -> Self {
        self.suppress_ids = suppress;
        self
    }
}

impl PrivacyTransform for HybridIsometryMethod {
    fn name(&self) -> &'static str {
        "hybrid-isometry"
    }

    fn properties(&self) -> MethodProperties {
        MethodProperties {
            isometric: true,
            invertible: true,
            tunable_thresholds: true,
            keyspace_bits: None,
        }
    }

    fn fit(&self, data: &Dataset, rng: &mut dyn RngCore) -> Result<FitOutput> {
        let (normalizer, normalized) = self.normalization.fit_transform(data.matrix())?;
        let out = HybridIsometry::new(self.config.clone()).transform(&normalized, rng)?;
        let released = released_dataset(out.transformed, data, self.suppress_ids)?;
        Ok(FitOutput {
            released,
            fitted: Box::new(FittedHybridIsometry {
                key: out.key,
                normalizer,
                solver_grid: self.config.solver_grid,
                suppress_ids: self.suppress_ids,
            }),
        })
    }
}

/// A fitted hybrid-isometry state: the v2 isometry key plus the fitted
/// normalizer.
#[derive(Debug, Clone)]
pub struct FittedHybridIsometry {
    key: IsometryKey,
    normalizer: FittedNormalizer,
    solver_grid: usize,
    suppress_ids: bool,
}

impl FittedHybridIsometry {
    /// The fitted isometry key.
    pub fn key(&self) -> &IsometryKey {
        &self.key
    }

    /// The fitted normalizer.
    pub fn normalizer(&self) -> &FittedNormalizer {
        &self.normalizer
    }
}

impl FittedTransform for FittedHybridIsometry {
    fn method_name(&self) -> &'static str {
        "hybrid-isometry"
    }

    fn properties(&self) -> MethodProperties {
        MethodProperties {
            isometric: true,
            invertible: true,
            tunable_thresholds: true,
            // +1 bit per pair: the attacker must also guess each step's
            // isometry family.
            keyspace_bits: angle_keyspace_bits(self.key.steps().len(), self.solver_grid, 1.0),
        }
    }

    fn n_attributes(&self) -> usize {
        self.key.n_attributes()
    }

    fn transform_batch(&mut self, batch: &Dataset) -> Result<Dataset> {
        let normalized = self.normalizer.transform(batch.matrix())?;
        let transformed = self.key.apply(&normalized)?;
        released_dataset(transformed, batch, self.suppress_ids)
    }

    fn invert_batch(&self, released: &Dataset) -> Result<Dataset> {
        let normalized = self.key.invert(released.matrix())?;
        let raw = self.normalizer.inverse_transform(&normalized)?;
        // Owner-side recovery keeps whatever IDs the released batch had.
        released_dataset(raw, released, false)
    }

    fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut w = ByteWriter::new();
        w.put_str(self.method_name());
        self.normalizer.encode_into(&mut w);
        w.put_usize(self.key.n_attributes());
        w.put_usize(self.key.steps().len());
        for step in self.key.steps() {
            match *step {
                IsometryStep::Rotate {
                    i,
                    j,
                    theta_degrees,
                } => {
                    w.put_u8(0);
                    w.put_usize(i);
                    w.put_usize(j);
                    w.put_f64(theta_degrees);
                }
                IsometryStep::Reflect { i, j, phi_degrees } => {
                    w.put_u8(1);
                    w.put_usize(i);
                    w.put_usize(j);
                    w.put_f64(phi_degrees);
                }
            }
        }
        w.put_usize(self.solver_grid);
        w.put_bool(self.suppress_ids);
        Ok(seal_envelope(RecordKind::Method, w.as_bytes()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn decode_hybrid_isometry(r: &mut ByteReader<'_>) -> Result<FittedHybridIsometry> {
    let normalizer = FittedNormalizer::decode_from(r).map_err(CodecError::from)?;
    let n_attributes = r.take_usize().map_err(CodecError::from)?;
    let n_steps = r.take_usize().map_err(CodecError::from)?;
    let mut steps = Vec::with_capacity(n_steps.min(1024));
    for _ in 0..n_steps {
        let tag_offset = r.position();
        let tag = r.take_u8().map_err(CodecError::from)?;
        let i = r.take_usize().map_err(CodecError::from)?;
        let j = r.take_usize().map_err(CodecError::from)?;
        let angle = r.take_f64().map_err(CodecError::from)?;
        steps.push(match tag {
            0 => IsometryStep::Rotate {
                i,
                j,
                theta_degrees: angle,
            },
            1 => IsometryStep::Reflect {
                i,
                j,
                phi_degrees: angle,
            },
            other => {
                return Err(CodecError::Byte(rbt_linalg::codec::DecodeError::Malformed {
                    offset: tag_offset,
                    message: format!("unknown isometry step tag {other}"),
                })
                .into())
            }
        });
    }
    let solver_grid = r.take_usize().map_err(CodecError::from)?;
    let suppress_ids = r.take_bool().map_err(CodecError::from)?;
    r.expect_end().map_err(CodecError::from)?;
    let key = IsometryKey::new(steps, n_attributes)?;
    if key.n_attributes() != normalizer.n_cols() {
        return Err(RbtError::DimensionMismatch(format!(
            "isometry key covers {} attributes, normalizer {} columns",
            key.n_attributes(),
            normalizer.n_cols()
        )));
    }
    Ok(FittedHybridIsometry {
        key,
        normalizer,
        solver_grid,
        suppress_ids,
    })
}

// ---------------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------------

/// The perturbation a fitted baseline applies per batch.
#[derive(Debug, Clone, Copy)]
enum BaselineKind {
    Noise(AdditiveNoise),
    Swap(RankSwap),
    Geometric(HybridPerturbation),
}

impl BaselineKind {
    fn method_name(&self) -> &'static str {
        match self {
            BaselineKind::Noise(_) => "noise",
            BaselineKind::Swap(_) => "swap",
            BaselineKind::Geometric(_) => "geometric",
        }
    }

    fn perturb(&self, m: &rbt_linalg::Matrix, rng: &mut StdRng) -> Result<rbt_linalg::Matrix> {
        Ok(match self {
            BaselineKind::Noise(p) => p.perturb(m, rng)?,
            BaselineKind::Swap(p) => p.perturb(m, rng)?,
            BaselineKind::Geometric(p) => p.perturb(m, rng)?,
        })
    }
}

/// The per-batch perturbation stream: the fit-time secret seed mixed with
/// an FNV-1a fingerprint of the batch's shape and exact `f64` bit
/// patterns.
///
/// Content-derived seeding gives three properties at once: **distinct
/// batches draw independent perturbations** (no cross-batch reuse of
/// noise/swap patterns, which a known-sample attacker could subtract
/// off), **re-releasing identical content reuses identical draws** (so an
/// attacker cannot average fresh noise away by requesting the same batch
/// twice), and **a persisted-and-restored state behaves exactly like the
/// live one** (there is no stream position to lose).
fn baseline_batch_stream(seed: u64, m: &rbt_linalg::Matrix) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(m.rows() as u64);
    mix(m.cols() as u64);
    for &v in m.as_slice() {
        mix(v.to_bits());
    }
    StdRng::seed_from_u64(seed ^ h)
}

/// Shared fit/state machinery for the three baselines.
///
/// A baseline has no distance-preserving key: "fitting" draws a private
/// seed from the caller's RNG and releases the fitting data under a
/// stream derived from it via [`baseline_batch_stream`]; subsequent
/// batches derive their own streams the same way (noise and swapping are
/// per-record by definition; the geometric method re-draws its per-pair
/// parameters each batch).
fn fit_baseline(
    kind: BaselineKind,
    suppress_ids: bool,
    data: &Dataset,
    rng: &mut dyn RngCore,
) -> Result<FitOutput> {
    let seed = rng.next_u64();
    let mut stream = baseline_batch_stream(seed, data.matrix());
    let released_matrix = kind.perturb(data.matrix(), &mut stream)?;
    let released = released_dataset(released_matrix, data, suppress_ids)?;
    Ok(FitOutput {
        released,
        fitted: Box::new(FittedBaseline {
            kind,
            seed,
            n_attributes: data.n_cols(),
            suppress_ids,
        }),
    })
}

/// A fitted baseline: the configured perturbation plus its private seed.
#[derive(Debug, Clone)]
pub struct FittedBaseline {
    kind: BaselineKind,
    /// The fit-time seed — persisted by
    /// [`to_bytes`](FittedTransform::to_bytes). Per-batch draws are
    /// derived from it and the batch content ([`baseline_batch_stream`]),
    /// so a restored state perturbs exactly like the live one.
    seed: u64,
    n_attributes: usize,
    suppress_ids: bool,
}

impl FittedTransform for FittedBaseline {
    fn method_name(&self) -> &'static str {
        self.kind.method_name()
    }

    fn properties(&self) -> MethodProperties {
        MethodProperties {
            isometric: false,
            invertible: false,
            tunable_thresholds: false,
            keyspace_bits: None,
        }
    }

    fn n_attributes(&self) -> usize {
        self.n_attributes
    }

    fn transform_batch(&mut self, batch: &Dataset) -> Result<Dataset> {
        if batch.n_cols() != self.n_attributes {
            return Err(RbtError::DimensionMismatch(format!(
                "baseline fitted for {} attributes, batch has {}",
                self.n_attributes,
                batch.n_cols()
            )));
        }
        let mut stream = baseline_batch_stream(self.seed, batch.matrix());
        let perturbed = self.kind.perturb(batch.matrix(), &mut stream)?;
        released_dataset(perturbed, batch, self.suppress_ids)
    }

    fn invert_batch(&self, _released: &Dataset) -> Result<Dataset> {
        Err(RbtError::NotInvertible {
            method: self.method_name().into(),
        })
    }

    fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut w = ByteWriter::new();
        w.put_str(self.method_name());
        match self.kind {
            BaselineKind::Noise(p) => {
                w.put_u8(match p.kind() {
                    NoiseKind::Uniform => 0,
                    NoiseKind::Gaussian => 1,
                });
                w.put_f64(p.level());
            }
            BaselineKind::Swap(p) => {
                w.put_f64(p.window());
            }
            BaselineKind::Geometric(p) => {
                let (lo, hi) = p.scale_bounds();
                w.put_f64(p.translation_magnitude());
                w.put_f64(lo);
                w.put_f64(hi);
            }
        }
        w.put_u64(self.seed);
        w.put_usize(self.n_attributes);
        w.put_bool(self.suppress_ids);
        Ok(seal_envelope(RecordKind::Method, w.as_bytes()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn decode_baseline(name: &str, r: &mut ByteReader<'_>) -> Result<FittedBaseline> {
    let kind = match name {
        "noise" => {
            let tag_offset = r.position();
            let kind = match r.take_u8().map_err(CodecError::from)? {
                0 => NoiseKind::Uniform,
                1 => NoiseKind::Gaussian,
                other => {
                    return Err(CodecError::Byte(rbt_linalg::codec::DecodeError::Malformed {
                        offset: tag_offset,
                        message: format!("unknown noise kind tag {other}"),
                    })
                    .into())
                }
            };
            let level = r.take_f64().map_err(CodecError::from)?;
            BaselineKind::Noise(AdditiveNoise::new(kind, level)?)
        }
        "swap" => BaselineKind::Swap(RankSwap::new(r.take_f64().map_err(CodecError::from)?)?),
        "geometric" => {
            let magnitude = r.take_f64().map_err(CodecError::from)?;
            let lo = r.take_f64().map_err(CodecError::from)?;
            let hi = r.take_f64().map_err(CodecError::from)?;
            BaselineKind::Geometric(HybridPerturbation::new(magnitude, lo, hi)?)
        }
        other => {
            return Err(RbtError::UnknownMethod {
                name: other.to_string(),
            })
        }
    };
    let seed = r.take_u64().map_err(CodecError::from)?;
    let n_attributes = r.take_usize().map_err(CodecError::from)?;
    let suppress_ids = r.take_bool().map_err(CodecError::from)?;
    r.expect_end().map_err(CodecError::from)?;
    Ok(FittedBaseline {
        kind,
        seed,
        n_attributes,
        suppress_ids,
    })
}

/// Additive noise as a [`PrivacyTransform`].
#[derive(Debug, Clone, Copy)]
pub struct NoiseMethod {
    noise: AdditiveNoise,
    suppress_ids: bool,
}

impl NoiseMethod {
    /// Creates the method around a configured noise distribution.
    pub fn new(noise: AdditiveNoise) -> Self {
        NoiseMethod {
            noise,
            suppress_ids: true,
        }
    }

    /// Controls §5.3 ID suppression on releases (`true` by default).
    pub fn with_id_suppression(mut self, suppress: bool) -> Self {
        self.suppress_ids = suppress;
        self
    }
}

impl PrivacyTransform for NoiseMethod {
    fn name(&self) -> &'static str {
        "noise"
    }

    fn properties(&self) -> MethodProperties {
        MethodProperties {
            isometric: false,
            invertible: false,
            tunable_thresholds: false,
            keyspace_bits: None,
        }
    }

    fn fit(&self, data: &Dataset, rng: &mut dyn RngCore) -> Result<FitOutput> {
        fit_baseline(
            BaselineKind::Noise(self.noise),
            self.suppress_ids,
            data,
            rng,
        )
    }
}

/// Rank swapping as a [`PrivacyTransform`].
#[derive(Debug, Clone, Copy)]
pub struct SwapMethod {
    swap: RankSwap,
    suppress_ids: bool,
}

impl SwapMethod {
    /// Creates the method around a configured swap window.
    pub fn new(swap: RankSwap) -> Self {
        SwapMethod {
            swap,
            suppress_ids: true,
        }
    }

    /// Controls §5.3 ID suppression on releases (`true` by default).
    pub fn with_id_suppression(mut self, suppress: bool) -> Self {
        self.suppress_ids = suppress;
        self
    }
}

impl PrivacyTransform for SwapMethod {
    fn name(&self) -> &'static str {
        "swap"
    }

    fn properties(&self) -> MethodProperties {
        MethodProperties {
            isometric: false,
            invertible: false,
            tunable_thresholds: false,
            keyspace_bits: None,
        }
    }

    fn fit(&self, data: &Dataset, rng: &mut dyn RngCore) -> Result<FitOutput> {
        fit_baseline(BaselineKind::Swap(self.swap), self.suppress_ids, data, rng)
    }
}

/// The geometric (GDTM) hybrid as a [`PrivacyTransform`].
#[derive(Debug, Clone, Copy)]
pub struct GeometricMethod {
    hybrid: HybridPerturbation,
    suppress_ids: bool,
}

impl GeometricMethod {
    /// Creates the method around a configured geometric hybrid.
    pub fn new(hybrid: HybridPerturbation) -> Self {
        GeometricMethod {
            hybrid,
            suppress_ids: true,
        }
    }

    /// Controls §5.3 ID suppression on releases (`true` by default).
    pub fn with_id_suppression(mut self, suppress: bool) -> Self {
        self.suppress_ids = suppress;
        self
    }
}

impl PrivacyTransform for GeometricMethod {
    fn name(&self) -> &'static str {
        "geometric"
    }

    fn properties(&self) -> MethodProperties {
        MethodProperties {
            isometric: false,
            invertible: false,
            tunable_thresholds: false,
            keyspace_bits: None,
        }
    }

    fn fit(&self, data: &Dataset, rng: &mut dyn RngCore) -> Result<FitOutput> {
        fit_baseline(
            BaselineKind::Geometric(self.hybrid),
            self.suppress_ids,
            data,
            rng,
        )
    }
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

/// Decodes any fitted transform persisted by
/// [`FittedTransform::to_bytes`]: RBT session records (binary envelope or
/// checksummed text form) come back as [`FittedRbt`], name-tagged method
/// records as their respective fitted types.
///
/// # Errors
///
/// * [`RbtError::Codec`] for corruption, truncation, or framing problems,
/// * [`RbtError::UnknownMethod`] for a method record naming a method this
///   build does not register.
pub fn decode_fitted(bytes: &[u8]) -> Result<Box<dyn FittedTransform>> {
    if !bytes.starts_with(&MAGIC) {
        // Only RBT sessions have a text form.
        return Ok(Box::new(FittedRbt::from_session(ReleaseSession::decode(
            bytes,
        )?)));
    }
    match open_envelope(bytes, RecordKind::Method) {
        Ok(payload) => {
            let mut r = ByteReader::new(payload);
            let name = r.take_str().map_err(CodecError::from)?.to_string();
            match name.as_str() {
                "hybrid-isometry" => Ok(Box::new(decode_hybrid_isometry(&mut r)?)),
                _ => Ok(Box::new(decode_baseline(&name, &mut r)?)),
            }
        }
        Err(rbt_core::Error::Codec(CodecError::WrongKind { .. })) => Ok(Box::new(
            FittedRbt::from_session(ReleaseSession::from_bytes(bytes)?),
        )),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trips_names_and_aliases() {
        for m in Method::ALL {
            assert_eq!(Method::from_name(m.name()).unwrap(), m);
            assert_eq!(m.default_transform().name(), m.name());
            assert!(!m.description().is_empty());
        }
        assert_eq!(Method::from_name("RBT").unwrap(), Method::Rbt);
        assert_eq!(Method::from_name("rank-swap").unwrap(), Method::Swap);
        assert_eq!(Method::from_name("gdtm").unwrap(), Method::Geometric);
        assert!(matches!(
            Method::from_name("wavelet"),
            Err(RbtError::UnknownMethod { .. })
        ));
    }

    #[test]
    fn keyspace_estimate_shape() {
        assert_eq!(angle_keyspace_bits(0, 3600, 0.0), None);
        let rbt = angle_keyspace_bits(2, 3600, 0.0).unwrap();
        let hybrid = angle_keyspace_bits(2, 3600, 1.0).unwrap();
        assert!((hybrid - rbt - 2.0).abs() < 1e-12, "+1 bit per step");
        assert!(rbt > 23.0 && rbt < 24.0, "2·log2(3600) ≈ 23.6, got {rbt}");
    }
}
