//! The workspace-wide error taxonomy.
//!
//! Every layer below this one has a typed, crate-local error
//! ([`rbt_linalg::Error`], [`rbt_data::Error`], [`rbt_core::Error`],
//! [`rbt_transform::Error`], [`rbt_core::codec::CodecError`]). [`RbtError`]
//! is the single type the *service boundary* speaks: it re-groups those
//! errors by **what the caller should do about them** — fix the
//! configuration, fix the data shape, lower the thresholds, replace the
//! corrupt key file — rather than by which crate noticed. The CLI maps each
//! group to a distinct process exit code via [`RbtError::exit_code`].

use rbt_core::codec::CodecError;
use std::fmt;

/// The unified error type of the release API.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RbtError {
    /// A requested pairwise-security threshold is unsatisfiable: no
    /// isometry angle achieves it for this attribute pair. The maximum
    /// achievable variances tell the administrator what *would* work.
    InfeasibleThreshold {
        /// First attribute index of the failing pair.
        i: usize,
        /// Second attribute index of the failing pair.
        j: usize,
        /// The requested `Var(Ai − Ai')` threshold.
        rho1: f64,
        /// The requested `Var(Aj − Aj')` threshold.
        rho2: f64,
        /// Maximum `Var(Ai − Ai')` achievable over all angles.
        max_var1: f64,
        /// Maximum `Var(Aj − Aj')` achievable over all angles.
        max_var2: f64,
    },
    /// Two parts of the system disagree on a shape: a batch with the wrong
    /// column count for its fitted key, a normalizer fitted for different
    /// data, mismatched drift bounds, …
    DimensionMismatch(String),
    /// A persisted artifact (key file, session, fitted method) could not be
    /// decoded: corruption, truncation, tampering, unsupported version.
    Codec(CodecError),
    /// The method cannot invert releases (the additive-noise / swapping /
    /// geometric baselines destroy information by design).
    NotInvertible {
        /// Registry name of the non-invertible method.
        method: String,
    },
    /// No registered method answers to this name (see
    /// [`Method::from_name`](crate::Method::from_name)).
    UnknownMethod {
        /// The name that failed to resolve.
        name: String,
    },
    /// A parameter or configuration was invalid for the chosen method
    /// (thresholds handed to a baseline, a non-positive noise level, an
    /// empty min–max target range, …).
    InvalidConfig(String),
    /// A data-layer failure: CSV parse errors, unknown columns, invalid
    /// numeric arguments.
    Data(rbt_data::Error),
    /// A linear-algebra failure (shape errors inside kernels).
    Linalg(rbt_linalg::Error),
    /// An RBT-core failure not covered by a more specific variant.
    Core(rbt_core::Error),
    /// A baseline-transform failure not covered by a more specific variant.
    Transform(rbt_transform::Error),
}

impl RbtError {
    /// The process exit code the CLI maps this error to. Distinct codes
    /// per failure family let scripts branch on *why* a release failed:
    ///
    /// | code | family |
    /// |------|--------|
    /// | 2    | usage: unknown method, invalid configuration |
    /// | 3    | input data: CSV parse failures, unknown columns |
    /// | 4    | key files: corruption, truncation, version mismatch |
    /// | 5    | shape: batch/key/normalizer dimension disagreements |
    /// | 6    | thresholds: requested security level unachievable |
    /// | 7    | method capability: inversion requested from a baseline |
    /// | 1    | anything else |
    pub fn exit_code(&self) -> u8 {
        match self {
            RbtError::UnknownMethod { .. } | RbtError::InvalidConfig(_) => 2,
            RbtError::Data(_) => 3,
            RbtError::Codec(_) => 4,
            RbtError::DimensionMismatch(_) => 5,
            RbtError::InfeasibleThreshold { .. } => 6,
            RbtError::NotInvertible { .. } => 7,
            _ => 1,
        }
    }
}

impl fmt::Display for RbtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RbtError::InfeasibleThreshold {
                i,
                j,
                rho1,
                rho2,
                max_var1,
                max_var2,
            } => write!(
                f,
                "security threshold ({rho1}, {rho2}) is unachievable for attribute pair \
                 ({i}, {j}); the maximum achievable variances are ({max_var1:.4}, {max_var2:.4}) \
                 — lower the thresholds to at most those values"
            ),
            RbtError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            RbtError::Codec(e) => write!(f, "key file error: {e}"),
            RbtError::NotInvertible { method } => write!(
                f,
                "method {method:?} is not invertible: it has no key that undoes the release"
            ),
            RbtError::UnknownMethod { name } => write!(
                f,
                "unknown method {name:?} (run `rbt-cli methods` for the registry)"
            ),
            RbtError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RbtError::Data(e) => write!(f, "data error: {e}"),
            RbtError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            RbtError::Core(e) => write!(f, "rbt error: {e}"),
            RbtError::Transform(e) => write!(f, "transform error: {e}"),
        }
    }
}

impl std::error::Error for RbtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RbtError::Codec(e) => Some(e),
            RbtError::Data(e) => Some(e),
            RbtError::Linalg(e) => Some(e),
            RbtError::Core(e) => Some(e),
            RbtError::Transform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rbt_core::Error> for RbtError {
    fn from(e: rbt_core::Error) -> Self {
        match e {
            rbt_core::Error::EmptySecurityRange {
                i,
                j,
                rho1,
                rho2,
                max_var1,
                max_var2,
            } => RbtError::InfeasibleThreshold {
                i,
                j,
                rho1,
                rho2,
                max_var1,
                max_var2,
            },
            rbt_core::Error::KeyMismatch(msg) => RbtError::DimensionMismatch(msg),
            rbt_core::Error::InvalidParameter(msg) | rbt_core::Error::InvalidPairing(msg) => {
                RbtError::InvalidConfig(msg)
            }
            rbt_core::Error::Codec(e) => RbtError::Codec(e),
            rbt_core::Error::KeyParse { line, message } => {
                RbtError::Codec(CodecError::Text { line, message })
            }
            rbt_core::Error::Linalg(e) => RbtError::Linalg(e),
            rbt_core::Error::Data(e) => RbtError::from(e),
            other => RbtError::Core(other),
        }
    }
}

impl From<rbt_data::Error> for RbtError {
    fn from(e: rbt_data::Error) -> Self {
        match e {
            rbt_data::Error::Shape(msg) => RbtError::DimensionMismatch(msg),
            rbt_data::Error::NotFitted(msg) => RbtError::DimensionMismatch(msg),
            rbt_data::Error::Linalg(e) => RbtError::Linalg(e),
            other => RbtError::Data(other),
        }
    }
}

impl From<rbt_transform::Error> for RbtError {
    fn from(e: rbt_transform::Error) -> Self {
        match e {
            rbt_transform::Error::InvalidParameter(msg) => RbtError::InvalidConfig(msg),
            // Same failure family as a normalizer refusing NaN input: the
            // *data* is at fault, so it must land in the same exit-code
            // group regardless of which method noticed.
            rbt_transform::Error::InvalidData(msg) => {
                RbtError::Data(rbt_data::Error::InvalidArgument(msg))
            }
            rbt_transform::Error::Linalg(e) => RbtError::Linalg(e),
            other => RbtError::Transform(other),
        }
    }
}

impl From<rbt_linalg::Error> for RbtError {
    fn from(e: rbt_linalg::Error) -> Self {
        RbtError::Linalg(e)
    }
}

impl From<CodecError> for RbtError {
    fn from(e: CodecError) -> Self {
        RbtError::Codec(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RbtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_errors_regroup_by_remedy() {
        let e: RbtError = rbt_core::Error::EmptySecurityRange {
            i: 0,
            j: 1,
            rho1: 9.0,
            rho2: 9.0,
            max_var1: 1.0,
            max_var2: 1.0,
        }
        .into();
        assert!(matches!(
            e,
            RbtError::InfeasibleThreshold { i: 0, j: 1, .. }
        ));
        assert_eq!(e.exit_code(), 6);

        let e: RbtError = rbt_core::Error::KeyMismatch("3 vs 5".into()).into();
        assert!(matches!(e, RbtError::DimensionMismatch(_)));
        assert_eq!(e.exit_code(), 5);

        let e: RbtError = rbt_core::Error::Codec(CodecError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        })
        .into();
        assert_eq!(e.exit_code(), 4);
    }

    #[test]
    fn data_and_transform_errors_regroup() {
        let e: RbtError = rbt_data::Error::Parse {
            line: 3,
            message: "bad float".into(),
        }
        .into();
        assert!(matches!(e, RbtError::Data(_)));
        assert_eq!(e.exit_code(), 3);

        let e: RbtError = rbt_data::Error::NotFitted("2 vs 4 columns".into()).into();
        assert!(matches!(e, RbtError::DimensionMismatch(_)));

        let e: RbtError = rbt_transform::Error::InvalidParameter("level".into()).into();
        assert!(matches!(e, RbtError::InvalidConfig(_)));
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn exit_codes_are_distinct_per_family() {
        let samples = [
            RbtError::UnknownMethod { name: "x".into() }.exit_code(),
            RbtError::Data(rbt_data::Error::UnknownColumn("c".into())).exit_code(),
            RbtError::Codec(CodecError::UnsupportedVersion { found: 9 }).exit_code(),
            RbtError::DimensionMismatch("a".into()).exit_code(),
            RbtError::InfeasibleThreshold {
                i: 0,
                j: 1,
                rho1: 1.0,
                rho2: 1.0,
                max_var1: 0.1,
                max_var2: 0.1,
            }
            .exit_code(),
            RbtError::NotInvertible {
                method: "noise".into(),
            }
            .exit_code(),
        ];
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), samples.len(), "codes collide: {samples:?}");
    }
}
