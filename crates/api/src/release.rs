//! The typed-state `Release` builder — the blessed entry point for every
//! privacy-preserving release.
//!
//! ```
//! use rand::SeedableRng;
//! use rbt_api::{Method, Release};
//! use rbt_core::PairwiseSecurityThreshold;
//! use rbt_data::datasets;
//!
//! let patients = datasets::arrhythmia_sample();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
//! let mut fitted = Release::of(&patients)
//!     .with_method(Method::Rbt)
//!     .with_thresholds(PairwiseSecurityThreshold::uniform(0.3).unwrap())
//!     .fit(&mut rng)
//!     .unwrap();
//! assert!(fitted.properties().isometric);
//! // The same secrets transform tomorrow's batch…
//! let batch = fitted.transform_batch(&patients).unwrap();
//! // …and the owner can undo it.
//! let recovered = fitted.invert_batch(&batch).unwrap();
//! assert!(recovered.matrix().approx_eq(patients.matrix(), 1e-8));
//! ```
//!
//! The builder is **typed-state**: [`Release::of`] returns a builder
//! without a `fit` method; only [`with_method`](ReleaseBuilder::with_method)
//! / [`with_transform`](ReleaseBuilder::with_transform) unlock it, so
//! "forgot to pick a method" is a compile error, not a runtime panic.
//! Method-specific knobs that do not apply (thresholds on a baseline, a
//! normalization override on an opaque custom transform) are typed
//! [`RbtError::InvalidConfig`] failures at [`fit`](ReleaseBuilder::fit)
//! time.

use crate::error::{RbtError, Result};
use crate::methods::{
    FittedRbt, GeometricMethod, HybridIsometryMethod, Method, NoiseMethod, RbtMethod, SwapMethod,
};
use crate::transform_api::{FittedTransform, MethodProperties, PrivacyTransform};
use rand::RngCore;
use rbt_core::method::ThresholdPolicy;
use rbt_core::pairing::PairingStrategy;
use rbt_core::ReleaseSession;
use rbt_data::{Dataset, Normalization};

/// Marker entry point for the release builder; see [`Release::of`].
pub struct Release;

impl Release {
    /// Starts building a release of `data`. The returned builder has no
    /// `fit` until a method is chosen.
    pub fn of(data: &Dataset) -> ReleaseBuilder<'_, NeedsMethod> {
        ReleaseBuilder {
            data,
            state: NeedsMethod(()),
        }
    }
}

/// Typed state: no method chosen yet (no `fit` available).
pub struct NeedsMethod(());

/// Typed state: a method (or custom transform) is chosen; `fit` unlocked.
pub struct HasMethod {
    spec: Spec,
}

enum Spec {
    Registry {
        method: Method,
        thresholds: Option<ThresholdPolicy>,
        pairing: Option<PairingStrategy>,
        normalization: Option<Normalization>,
        suppress_ids: Option<bool>,
    },
    Custom(Box<dyn PrivacyTransform>),
    /// A knob was applied that the chosen spec cannot take; reported as
    /// [`RbtError::InvalidConfig`] at fit time.
    Invalid(String),
}

/// The release builder; `S` is the typed state.
pub struct ReleaseBuilder<'d, S> {
    data: &'d Dataset,
    state: S,
}

impl<'d> ReleaseBuilder<'d, NeedsMethod> {
    /// Chooses a registered method (with its documented defaults until
    /// overridden by the other builder knobs).
    pub fn with_method(self, method: Method) -> ReleaseBuilder<'d, HasMethod> {
        ReleaseBuilder {
            data: self.data,
            state: HasMethod {
                spec: Spec::Registry {
                    method,
                    thresholds: None,
                    pairing: None,
                    normalization: None,
                    suppress_ids: None,
                },
            },
        }
    }

    /// Supplies a pre-configured (possibly third-party) transform instead
    /// of a registry method. The builder's method-specific knobs are then
    /// rejected at fit time — configure the transform before handing it in.
    pub fn with_transform(
        self,
        transform: Box<dyn PrivacyTransform>,
    ) -> ReleaseBuilder<'d, HasMethod> {
        ReleaseBuilder {
            data: self.data,
            state: HasMethod {
                spec: Spec::Custom(transform),
            },
        }
    }
}

impl<'d> ReleaseBuilder<'d, HasMethod> {
    /// Sets the pairwise-security thresholds (RBT / hybrid isometry only).
    /// Accepts a single
    /// [`PairwiseSecurityThreshold`](rbt_core::PairwiseSecurityThreshold)
    /// (uniform across pairs) or a full [`ThresholdPolicy`].
    pub fn with_thresholds(mut self, thresholds: impl Into<ThresholdPolicy>) -> Self {
        self.state.spec = match self.state.spec {
            Spec::Registry {
                method,
                pairing,
                normalization,
                suppress_ids,
                ..
            } => Spec::Registry {
                method,
                thresholds: Some(thresholds.into()),
                pairing,
                normalization,
                suppress_ids,
            },
            other => Spec::invalid_knob(other, "thresholds"),
        };
        self
    }

    /// Sets the attribute-pairing strategy (RBT / hybrid isometry only).
    pub fn with_pairing(mut self, pairing: PairingStrategy) -> Self {
        self.state.spec = match self.state.spec {
            Spec::Registry {
                method,
                thresholds,
                normalization,
                suppress_ids,
                ..
            } => Spec::Registry {
                method,
                thresholds,
                pairing: Some(pairing),
                normalization,
                suppress_ids,
            },
            other => Spec::invalid_knob(other, "pairing"),
        };
        self
    }

    /// Sets the normalization step (RBT / hybrid isometry only).
    pub fn with_normalization(mut self, normalization: Normalization) -> Self {
        self.state.spec = match self.state.spec {
            Spec::Registry {
                method,
                thresholds,
                pairing,
                suppress_ids,
                ..
            } => Spec::Registry {
                method,
                thresholds,
                pairing,
                normalization: Some(normalization),
                suppress_ids,
            },
            other => Spec::invalid_knob(other, "normalization"),
        };
        self
    }

    /// Controls §5.3 ID suppression on releases (every registry method;
    /// `true` by default).
    pub fn with_id_suppression(mut self, suppress: bool) -> Self {
        self.state.spec = match self.state.spec {
            Spec::Registry {
                method,
                thresholds,
                pairing,
                normalization,
                ..
            } => Spec::Registry {
                method,
                thresholds,
                pairing,
                normalization,
                suppress_ids: Some(suppress),
            },
            other => Spec::invalid_knob(other, "id suppression"),
        };
        self
    }

    /// Fits the configured method to the dataset and produces the initial
    /// release plus the reusable fitted transform.
    ///
    /// RBT through this path is **bit-identical** to
    /// [`Pipeline::run`](rbt_core::Pipeline::run) +
    /// [`ReleaseSession`] with the same RNG stream (the builder is a thin
    /// wrapper over exactly those).
    ///
    /// # Errors
    ///
    /// * [`RbtError::InvalidConfig`] when a knob does not apply to the
    ///   chosen method (thresholds on a baseline, any knob on a custom
    ///   transform),
    /// * everything [`PrivacyTransform::fit`] can return.
    pub fn fit(self, rng: &mut dyn RngCore) -> Result<FittedRelease> {
        let transform = self.state.spec.into_transform()?;
        let out = transform.fit(self.data, rng)?;
        Ok(FittedRelease {
            released: out.released,
            fitted: out.fitted,
        })
    }
}

impl Spec {
    /// Records a knob applied to a spec that cannot take it; surfaced as a
    /// typed error at fit time (builder setters stay infallible).
    fn invalid_knob(spec: Spec, knob: &str) -> Spec {
        match spec {
            // Keep the first failure — it names the original mistake.
            Spec::Invalid(message) => Spec::Invalid(message),
            Spec::Registry { method, .. } => Spec::Invalid(format!(
                "method {:?} takes no {knob} setting",
                method.name()
            )),
            Spec::Custom(t) => Spec::Invalid(format!(
                "custom transform {:?} takes no {knob} setting — configure it before \
                 with_transform",
                t.name()
            )),
        }
    }

    fn into_transform(self) -> Result<Box<dyn PrivacyTransform>> {
        match self {
            Spec::Invalid(message) => Err(RbtError::InvalidConfig(message)),
            Spec::Custom(t) => Ok(t),
            Spec::Registry {
                method,
                thresholds,
                pairing,
                normalization,
                suppress_ids,
            } => {
                let has_rbt_knobs =
                    thresholds.is_some() || pairing.is_some() || normalization.is_some();
                match method {
                    Method::Rbt | Method::HybridIsometry => {
                        let mut config = crate::methods::default_rbt_config();
                        if let Some(t) = thresholds {
                            config = config.with_thresholds(t);
                        }
                        if let Some(p) = pairing {
                            config = config.with_pairing(p);
                        }
                        let normalization =
                            normalization.unwrap_or_else(Normalization::zscore_paper);
                        let suppress = suppress_ids.unwrap_or(true);
                        Ok(if method == Method::Rbt {
                            Box::new(
                                RbtMethod::new(config)
                                    .with_normalization(normalization)
                                    .with_id_suppression(suppress),
                            )
                        } else {
                            Box::new(
                                HybridIsometryMethod::new(config)
                                    .with_normalization(normalization)
                                    .with_id_suppression(suppress),
                            )
                        })
                    }
                    Method::Noise | Method::Swap | Method::Geometric => {
                        if has_rbt_knobs {
                            return Err(RbtError::InvalidConfig(format!(
                                "method {:?} takes no thresholds/pairing/normalization — it \
                                 perturbs raw values directly; tune it by constructing the \
                                 transform explicitly and using with_transform",
                                method.name()
                            )));
                        }
                        let suppress = suppress_ids.unwrap_or(true);
                        Ok(match method {
                            Method::Noise => Box::new(
                                NoiseMethod::new(crate::methods::default_noise())
                                    .with_id_suppression(suppress),
                            ),
                            Method::Swap => Box::new(
                                SwapMethod::new(crate::methods::default_swap())
                                    .with_id_suppression(suppress),
                            ),
                            _ => Box::new(
                                GeometricMethod::new(rbt_transform::HybridPerturbation::default())
                                    .with_id_suppression(suppress),
                            ),
                        })
                    }
                }
            }
        }
    }
}

/// A completed release: the released dataset plus the fitted transform
/// behind it.
pub struct FittedRelease {
    released: Dataset,
    fitted: Box<dyn FittedTransform>,
}

impl std::fmt::Debug for FittedRelease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FittedRelease")
            .field("method", &self.fitted.method_name())
            .field("n_attributes", &self.fitted.n_attributes())
            .field("properties", &self.fitted.properties())
            .field("released_rows", &self.released.n_rows())
            .finish()
    }
}

impl FittedRelease {
    /// The initial release of the fitting data.
    pub fn released(&self) -> &Dataset {
        &self.released
    }

    /// The registry name of the fitted method.
    pub fn method_name(&self) -> &'static str {
        self.fitted.method_name()
    }

    /// The fitted method's capability descriptor, keyspace estimate
    /// included.
    pub fn properties(&self) -> MethodProperties {
        self.fitted.properties()
    }

    /// Number of attributes the release was fitted for.
    pub fn n_attributes(&self) -> usize {
        self.fitted.n_attributes()
    }

    /// Transforms a batch of out-of-sample records under the fitted
    /// secrets.
    ///
    /// # Errors
    ///
    /// As [`FittedTransform::transform_batch`].
    pub fn transform_batch(&mut self, batch: &Dataset) -> Result<Dataset> {
        self.fitted.transform_batch(batch)
    }

    /// Owner-side inverse of a released batch.
    ///
    /// # Errors
    ///
    /// As [`FittedTransform::invert_batch`] — notably
    /// [`RbtError::NotInvertible`] for baseline methods.
    pub fn invert_batch(&self, released: &Dataset) -> Result<Dataset> {
        self.fitted.invert_batch(released)
    }

    /// Serializes the fitted state into the sealed `RBTS` envelope; decode
    /// with [`decode_fitted`](crate::decode_fitted).
    ///
    /// # Errors
    ///
    /// As [`FittedTransform::to_bytes`].
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        self.fitted.to_bytes()
    }

    /// Borrows the fitted transform.
    pub fn fitted(&self) -> &dyn FittedTransform {
        self.fitted.as_ref()
    }

    /// Consumes the release, returning the released dataset and the fitted
    /// transform.
    pub fn into_parts(self) -> (Dataset, Box<dyn FittedTransform>) {
        (self.released, self.fitted)
    }

    /// The underlying [`ReleaseSession`] when the fitted method is RBT
    /// (`None` for every other method) — the bridge to the session-level
    /// API (chunked/pooled batch processing, drift accounting, text
    /// key-file form).
    pub fn session(&self) -> Option<&ReleaseSession> {
        self.fitted
            .as_any()
            .downcast_ref::<FittedRbt>()
            .map(FittedRbt::session)
    }
}
