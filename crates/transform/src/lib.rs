//! Baseline perturbation methods RBT is positioned against.
//!
//! The paper's related-work section contrasts RBT with two families:
//!
//! * the **geometric data transformation methods (GDTMs)** of the authors'
//!   own prior work (Oliveira & Zaïane, SBBD 2003 — reference \[10\]):
//!   translation, scaling, simple fixed-angle rotation, and a hybrid that
//!   picks one of the three per attribute ([`geometric`]);
//! * the **additive-noise** tradition of statistical-database security
//!   (Adam & Worthmann \[1\], Muralidhar et al. \[9\]): `Y = X + e`
//!   ([`noise`]), plus rank swapping ([`swap`]) from the same literature.
//!
//! The paper's critique (§1, §2) is that noise-style methods trade privacy
//! against clustering accuracy — points drift across cluster boundaries and
//! get misclassified — while translations/scalings/rotations *without*
//! normalization and security ranges either distort similarity or add no
//! tunable security. The comparison experiments (bench target `baselines`)
//! quantify exactly that trade-off with the misclassification and
//! F-measure metrics from `rbt-cluster` against the `Sec` privacy level
//! from `rbt-core`.
//!
//! Every method implements [`Perturbation`], so the experiment harness can
//! sweep them uniformly.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod geometric;
pub mod noise;
pub mod swap;

pub use geometric::{
    HybridPerturbation, ScalingPerturbation, SimpleRotation, TranslationPerturbation,
};
pub use noise::{AdditiveNoise, NoiseKind};
pub use swap::RankSwap;

use rand::Rng;
use rbt_linalg::Matrix;
use std::fmt;

/// Errors produced by the baseline transforms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An underlying linear-algebra error.
    Linalg(rbt_linalg::Error),
    /// A parameter was invalid.
    InvalidParameter(String),
    /// The input data itself was unusable (NaN/infinite values where a
    /// method needs finite ones) — distinct from [`Error::InvalidParameter`]
    /// so callers can blame the data, not the configuration.
    InvalidData(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Linalg(e) => write!(f, "linear algebra error: {e}"),
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::InvalidData(msg) => write!(f, "invalid data: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rbt_linalg::Error> for Error {
    fn from(e: rbt_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// A data-perturbation method: maps a data matrix to a released matrix.
///
/// Implementations must be deterministic given the RNG state, so that
/// experiments are reproducible from a seed.
pub trait Perturbation {
    /// Human-readable method name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Produces the released (perturbed) matrix.
    ///
    /// # Errors
    ///
    /// Implementations return [`Error::InvalidParameter`] when their
    /// configuration is incompatible with the input shape.
    fn perturb<R: Rng + ?Sized>(&self, data: &Matrix, rng: &mut R) -> Result<Matrix>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// All baselines behind one test: deterministic under a fixed seed.
    #[test]
    fn baselines_are_seed_deterministic() {
        let data = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0],
            &[4.0, 5.0, 6.0],
            &[7.0, 8.0, 9.0],
            &[0.5, -1.0, 2.5],
        ])
        .unwrap();
        let run = |seed: u64| -> Vec<Matrix> {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            vec![
                TranslationPerturbation::new(5.0)
                    .perturb(&data, &mut rng)
                    .unwrap(),
                ScalingPerturbation::new(0.5, 2.0)
                    .unwrap()
                    .perturb(&data, &mut rng)
                    .unwrap(),
                SimpleRotation::new(45.0).perturb(&data, &mut rng).unwrap(),
                HybridPerturbation::default()
                    .perturb(&data, &mut rng)
                    .unwrap(),
                AdditiveNoise::gaussian(0.3)
                    .unwrap()
                    .perturb(&data, &mut rng)
                    .unwrap(),
                AdditiveNoise::uniform(0.3)
                    .unwrap()
                    .perturb(&data, &mut rng)
                    .unwrap(),
                RankSwap::new(0.5)
                    .unwrap()
                    .perturb(&data, &mut rng)
                    .unwrap(),
            ]
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        for (x, y) in a.iter().zip(&b) {
            assert!(x.approx_eq(y, 0.0));
        }
        // At least one method must differ across seeds (they are random).
        assert!(a.iter().zip(&c).any(|(x, y)| !x.approx_eq(y, 1e-12)));
    }
}
