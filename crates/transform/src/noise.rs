//! Additive-noise perturbation from the statistical-database literature.
//!
//! The classic `Y = X + e` scheme (Adam & Worthmann \[1\]; Muralidhar,
//! Parsa & Sarathy \[9\]): independent zero-mean noise added to every
//! value. Security grows with the noise level — and so does the distance
//! distortion, which is exactly the privacy/accuracy trade-off the RBT
//! paper claims to escape. The bench target `baselines` sweeps the noise
//! level and reports misclassification vs the `Sec` level.

use crate::{Error, Perturbation, Result};
use rand::Rng;
use rbt_data::rng::standard_normal;
use rbt_linalg::Matrix;

/// Which noise distribution to add.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseKind {
    /// `e ~ Uniform(-level, level)`.
    Uniform,
    /// `e ~ Normal(0, level²)`.
    Gaussian,
}

/// Additive i.i.d. noise perturbation.
#[derive(Debug, Clone, Copy)]
pub struct AdditiveNoise {
    kind: NoiseKind,
    level: f64,
}

impl AdditiveNoise {
    /// Uniform noise on `[-level, level]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a non-positive level.
    pub fn uniform(level: f64) -> Result<Self> {
        Self::new(NoiseKind::Uniform, level)
    }

    /// Gaussian noise with standard deviation `level`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a non-positive level.
    pub fn gaussian(level: f64) -> Result<Self> {
        Self::new(NoiseKind::Gaussian, level)
    }

    /// Generic constructor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a non-positive level.
    pub fn new(kind: NoiseKind, level: f64) -> Result<Self> {
        if level.is_nan() || level <= 0.0 || !level.is_finite() {
            return Err(Error::InvalidParameter(format!(
                "noise level must be positive and finite, got {level}"
            )));
        }
        Ok(AdditiveNoise { kind, level })
    }

    /// The configured noise level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// The configured noise kind.
    pub fn kind(&self) -> NoiseKind {
        self.kind
    }
}

impl Perturbation for AdditiveNoise {
    fn name(&self) -> &'static str {
        match self.kind {
            NoiseKind::Uniform => "additive-uniform",
            NoiseKind::Gaussian => "additive-gaussian",
        }
    }

    fn perturb<R: Rng + ?Sized>(&self, data: &Matrix, rng: &mut R) -> Result<Matrix> {
        let noise = |rng: &mut R| -> f64 {
            match self.kind {
                NoiseKind::Uniform => rng.random_range(-self.level..=self.level),
                NoiseKind::Gaussian => self.level * standard_normal(rng),
            }
        };
        let mut out = data.clone();
        for v in out.as_mut_slice() {
            *v += noise(rng);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rbt_core::isometry::dissimilarity_drift;
    use rbt_core::security::security_level;
    use rbt_linalg::stats::VarianceMode;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn data() -> Matrix {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let x = (i as f64 * 0.37).sin() * 3.0;
                vec![x, x * 0.5 - 1.0, (i as f64 * 0.11).cos()]
            })
            .collect();
        Matrix::from_row_iter(rows).unwrap()
    }

    #[test]
    fn validates_level() {
        assert!(AdditiveNoise::uniform(0.0).is_err());
        assert!(AdditiveNoise::gaussian(-1.0).is_err());
        assert!(AdditiveNoise::gaussian(f64::INFINITY).is_err());
        assert!(AdditiveNoise::uniform(0.5).is_ok());
    }

    #[test]
    fn noise_breaks_isometry() {
        let d = data();
        let p = AdditiveNoise::gaussian(0.5)
            .unwrap()
            .perturb(&d, &mut rng(1))
            .unwrap();
        assert!(dissimilarity_drift(&d, &p) > 0.1);
    }

    #[test]
    fn gaussian_noise_variance_matches_level() {
        let d = Matrix::zeros(40_000, 1);
        let p = AdditiveNoise::gaussian(0.7)
            .unwrap()
            .perturb(&d, &mut rng(2))
            .unwrap();
        let v = rbt_linalg::stats::variance(&p.column(0), VarianceMode::Population).unwrap();
        assert!((v - 0.49).abs() < 0.02, "variance {v}");
    }

    #[test]
    fn uniform_noise_bounded() {
        let d = Matrix::zeros(10_000, 1);
        let p = AdditiveNoise::uniform(0.3)
            .unwrap()
            .perturb(&d, &mut rng(3))
            .unwrap();
        assert!(p.as_slice().iter().all(|&x| x.abs() <= 0.3));
    }

    #[test]
    fn security_grows_with_level() {
        // The statistical-DB Sec measure rises with the noise level — the
        // "more privacy" side of the trade-off RBT criticises.
        let d = data();
        let col = d.column(0);
        let mut secs = Vec::new();
        for level in [0.1, 0.5, 1.5] {
            let p = AdditiveNoise::gaussian(level)
                .unwrap()
                .perturb(&d, &mut rng(4))
                .unwrap();
            secs.push(security_level(&col, &p.column(0), VarianceMode::Sample).unwrap());
        }
        assert!(secs[0] < secs[1] && secs[1] < secs[2], "{secs:?}");
    }
}
