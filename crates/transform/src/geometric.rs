//! Geometric data transformation methods (GDTMs) from the authors' prior
//! work (Oliveira & Zaïane 2003, reference \[10\] of the RBT paper).
//!
//! These are the methods whose study *motivated* RBT: translation preserves
//! distances but offers weak, guessable protection; scaling and the hybrid
//! break distances (misclassification); a fixed-angle rotation preserves
//! distances but, without normalization and per-pair security ranges, its
//! security is neither tunable nor uniform across attributes.

use crate::{Error, Perturbation, Result};
use rand::Rng;
use rbt_linalg::{Matrix, Rotation2};

/// Translation perturbation (TDP): adds a random constant, drawn once per
/// attribute from `[-magnitude, magnitude]`, to every value of that
/// attribute.
#[derive(Debug, Clone, Copy)]
pub struct TranslationPerturbation {
    magnitude: f64,
}

impl TranslationPerturbation {
    /// Creates a translation perturbation with the given per-attribute
    /// shift magnitude.
    pub fn new(magnitude: f64) -> Self {
        TranslationPerturbation {
            magnitude: magnitude.abs(),
        }
    }
}

impl Perturbation for TranslationPerturbation {
    fn name(&self) -> &'static str {
        "translation"
    }

    fn perturb<R: Rng + ?Sized>(&self, data: &Matrix, rng: &mut R) -> Result<Matrix> {
        let shifts: Vec<f64> = (0..data.cols())
            .map(|_| rng.random_range(-self.magnitude..=self.magnitude))
            .collect();
        let mut out = data.clone();
        for i in 0..out.rows() {
            for (v, s) in out.row_mut(i).iter_mut().zip(&shifts) {
                *v += s;
            }
        }
        Ok(out)
    }
}

/// Scaling perturbation (SDP): multiplies every value of an attribute by a
/// random factor drawn once per attribute from `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPerturbation {
    lo: f64,
    hi: f64,
}

impl ScalingPerturbation {
    /// Creates a scaling perturbation with factors drawn from `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `0 < lo <= hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if lo.is_nan() || hi.is_nan() || lo <= 0.0 || hi < lo || !hi.is_finite() {
            return Err(Error::InvalidParameter(format!(
                "scaling factors must satisfy 0 < lo <= hi, got [{lo}, {hi}]"
            )));
        }
        Ok(ScalingPerturbation { lo, hi })
    }
}

impl Perturbation for ScalingPerturbation {
    fn name(&self) -> &'static str {
        "scaling"
    }

    fn perturb<R: Rng + ?Sized>(&self, data: &Matrix, rng: &mut R) -> Result<Matrix> {
        let factors: Vec<f64> = (0..data.cols())
            .map(|_| rng.random_range(self.lo..=self.hi))
            .collect();
        let mut out = data.clone();
        for i in 0..out.rows() {
            for (v, f) in out.row_mut(i).iter_mut().zip(&factors) {
                *v *= f;
            }
        }
        Ok(out)
    }
}

/// Simple rotation (RDP): rotates consecutive attribute pairs by one fixed,
/// administrator-chosen angle — no normalization prerequisite, no security
/// range, no per-pair angles. (With an odd attribute count the last column
/// is rotated against column 0, mirroring RBT's chaining.)
#[derive(Debug, Clone, Copy)]
pub struct SimpleRotation {
    degrees: f64,
}

impl SimpleRotation {
    /// Creates a fixed-angle rotation baseline.
    pub fn new(degrees: f64) -> Self {
        SimpleRotation { degrees }
    }
}

impl Perturbation for SimpleRotation {
    fn name(&self) -> &'static str {
        "simple-rotation"
    }

    fn perturb<R: Rng + ?Sized>(&self, data: &Matrix, _rng: &mut R) -> Result<Matrix> {
        let n = data.cols();
        if n < 2 {
            return Err(Error::InvalidParameter(
                "simple rotation needs at least 2 attributes".into(),
            ));
        }
        let rot = Rotation2::from_degrees(self.degrees);
        let mut out = data.clone();
        let mut pairs: Vec<(usize, usize)> = (0..n / 2).map(|t| (2 * t, 2 * t + 1)).collect();
        if n % 2 == 1 {
            pairs.push((n - 1, 0));
        }
        let mut xs = Vec::with_capacity(out.rows());
        let mut ys = Vec::with_capacity(out.rows());
        for (i, j) in pairs {
            out.column_into(i, &mut xs);
            out.column_into(j, &mut ys);
            rot.apply_columns(&mut xs, &mut ys)?;
            out.set_column(i, &xs)?;
            out.set_column(j, &ys)?;
        }
        Ok(out)
    }
}

/// Hybrid perturbation (HDP): for each attribute pair, randomly picks
/// translation, scaling, or rotation — the composite method of \[10\].
#[derive(Debug, Clone, Copy)]
pub struct HybridPerturbation {
    translation_magnitude: f64,
    scale_lo: f64,
    scale_hi: f64,
}

impl Default for HybridPerturbation {
    fn default() -> Self {
        HybridPerturbation {
            translation_magnitude: 1.0,
            scale_lo: 0.5,
            scale_hi: 1.5,
        }
    }
}

impl HybridPerturbation {
    /// Creates a hybrid perturbation with explicit sub-method parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `0 < scale_lo <= scale_hi`.
    pub fn new(translation_magnitude: f64, scale_lo: f64, scale_hi: f64) -> Result<Self> {
        if !(scale_lo > 0.0 && scale_hi >= scale_lo) {
            return Err(Error::InvalidParameter(format!(
                "scale bounds must satisfy 0 < lo <= hi, got [{scale_lo}, {scale_hi}]"
            )));
        }
        Ok(HybridPerturbation {
            translation_magnitude: translation_magnitude.abs(),
            scale_lo,
            scale_hi,
        })
    }

    /// The per-attribute translation shift magnitude.
    pub fn translation_magnitude(&self) -> f64 {
        self.translation_magnitude
    }

    /// The scaling factor bounds `(lo, hi)`.
    pub fn scale_bounds(&self) -> (f64, f64) {
        (self.scale_lo, self.scale_hi)
    }
}

impl Perturbation for HybridPerturbation {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn perturb<R: Rng + ?Sized>(&self, data: &Matrix, rng: &mut R) -> Result<Matrix> {
        let n = data.cols();
        if n < 2 {
            return Err(Error::InvalidParameter(
                "hybrid perturbation needs at least 2 attributes".into(),
            ));
        }
        let mut out = data.clone();
        let mut pairs: Vec<(usize, usize)> = (0..n / 2).map(|t| (2 * t, 2 * t + 1)).collect();
        if n % 2 == 1 {
            pairs.push((n - 1, 0));
        }
        let mut xs = Vec::with_capacity(out.rows());
        let mut ys = Vec::with_capacity(out.rows());
        for (i, j) in pairs {
            match rng.random_range(0..3u32) {
                0 => {
                    // Translate both columns by independent shifts.
                    for col in [i, j] {
                        let shift = rng
                            .random_range(-self.translation_magnitude..=self.translation_magnitude);
                        out.column_into(col, &mut xs);
                        for v in &mut xs {
                            *v += shift;
                        }
                        out.set_column(col, &xs)?;
                    }
                }
                1 => {
                    // Scale both columns by independent factors.
                    for col in [i, j] {
                        let factor = rng.random_range(self.scale_lo..=self.scale_hi);
                        out.column_into(col, &mut xs);
                        for v in &mut xs {
                            *v *= factor;
                        }
                        out.set_column(col, &xs)?;
                    }
                }
                _ => {
                    // Rotate the pair by a random angle.
                    let theta = rng.random_range(0.0..360.0);
                    out.column_into(i, &mut xs);
                    out.column_into(j, &mut ys);
                    Rotation2::from_degrees(theta).apply_columns(&mut xs, &mut ys)?;
                    out.set_column(i, &xs)?;
                    out.set_column(j, &ys)?;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rbt_core::isometry::dissimilarity_drift;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn data() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 2.0, 3.0],
            &[-4.0, 0.5, 6.0],
            &[7.0, -8.0, 9.0],
            &[2.0, 2.0, 2.0],
        ])
        .unwrap()
    }

    #[test]
    fn translation_preserves_distances_but_shifts_values() {
        let d = data();
        let p = TranslationPerturbation::new(10.0)
            .perturb(&d, &mut rng(1))
            .unwrap();
        assert!(dissimilarity_drift(&d, &p) < 1e-12);
        assert!(p.max_abs_diff(&d).unwrap() > 0.1);
    }

    #[test]
    fn scaling_changes_distances() {
        let d = data();
        let p = ScalingPerturbation::new(2.0, 3.0)
            .unwrap()
            .perturb(&d, &mut rng(2))
            .unwrap();
        assert!(dissimilarity_drift(&d, &p) > 0.5);
    }

    #[test]
    fn scaling_validates_bounds() {
        assert!(ScalingPerturbation::new(0.0, 1.0).is_err());
        assert!(ScalingPerturbation::new(2.0, 1.0).is_err());
        assert!(ScalingPerturbation::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn simple_rotation_is_isometric() {
        let d = data();
        let p = SimpleRotation::new(73.2).perturb(&d, &mut rng(3)).unwrap();
        assert!(dissimilarity_drift(&d, &p) < 1e-12);
        assert!(p.max_abs_diff(&d).unwrap() > 0.1);
    }

    #[test]
    fn simple_rotation_covers_odd_column() {
        let d = data(); // 3 columns
        let p = SimpleRotation::new(90.0).perturb(&d, &mut rng(0)).unwrap();
        for j in 0..3 {
            let moved = d
                .column(j)
                .iter()
                .zip(&p.column(j))
                .any(|(a, b)| (a - b).abs() > 1e-9);
            assert!(moved, "column {j} unchanged");
        }
    }

    #[test]
    fn simple_rotation_needs_two_columns() {
        let one = Matrix::from_columns(&[&[1.0, 2.0]]).unwrap();
        assert!(SimpleRotation::new(10.0)
            .perturb(&one, &mut rng(0))
            .is_err());
        assert!(HybridPerturbation::default()
            .perturb(&one, &mut rng(0))
            .is_err());
    }

    #[test]
    fn hybrid_perturbs_every_column() {
        let d = data();
        let p = HybridPerturbation::default()
            .perturb(&d, &mut rng(7))
            .unwrap();
        assert_eq!(p.shape(), d.shape());
        let total_change = p.max_abs_diff(&d).unwrap();
        assert!(total_change > 1e-6);
    }

    #[test]
    fn hybrid_validates_scale_bounds() {
        assert!(HybridPerturbation::new(1.0, 0.0, 1.0).is_err());
        assert!(HybridPerturbation::new(1.0, 2.0, 1.0).is_err());
        assert!(HybridPerturbation::new(-1.0, 0.5, 1.5).is_ok());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(TranslationPerturbation::new(1.0).name(), "translation");
        assert_eq!(
            ScalingPerturbation::new(1.0, 2.0).unwrap().name(),
            "scaling"
        );
        assert_eq!(SimpleRotation::new(1.0).name(), "simple-rotation");
        assert_eq!(HybridPerturbation::default().name(), "hybrid");
    }
}
