//! Rank swapping — the value-exchange baseline from statistical disclosure
//! control.
//!
//! Each attribute's values are sorted; every value may then be swapped with
//! a partner whose rank is within `window × m` positions. Marginal
//! distributions are preserved exactly (every original value still appears)
//! while record linkage is obscured — but multivariate structure degrades,
//! so clustering accuracy falls as the window grows.

use crate::{Error, Perturbation, Result};
use rand::Rng;
use rbt_linalg::Matrix;

/// Rank-swapping perturbation.
#[derive(Debug, Clone, Copy)]
pub struct RankSwap {
    /// Fraction of the column length that bounds the rank distance of a
    /// swap, in `(0, 1]`.
    window: f64,
}

impl RankSwap {
    /// Creates a rank swap with the given window fraction.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `0 < window <= 1`.
    pub fn new(window: f64) -> Result<Self> {
        if window.is_nan() || window <= 0.0 || window > 1.0 {
            return Err(Error::InvalidParameter(format!(
                "window must be in (0, 1], got {window}"
            )));
        }
        Ok(RankSwap { window })
    }

    /// The window fraction.
    pub fn window(&self) -> f64 {
        self.window
    }
}

impl Perturbation for RankSwap {
    fn name(&self) -> &'static str {
        "rank-swap"
    }

    fn perturb<R: Rng + ?Sized>(&self, data: &Matrix, rng: &mut R) -> Result<Matrix> {
        if data.has_non_finite() {
            return Err(Error::InvalidData(
                "rank swap needs finite attribute values (input has NaN or infinities)".into(),
            ));
        }
        let m = data.rows();
        let mut out = data.clone();
        if m < 2 {
            return Ok(out);
        }
        let max_offset = ((m as f64 * self.window).round() as usize).max(1);
        let mut column = Vec::with_capacity(m);
        for j in 0..data.cols() {
            data.column_into(j, &mut column);
            // Sort indices by value: order[r] = row holding rank r.
            let mut order: Vec<usize> = (0..m).collect();
            // Finiteness is checked on entry; total_cmp keeps the sort
            // panic-free even so.
            order.sort_by(|&a, &b| column[a].total_cmp(&column[b]));
            // Walk ranks; swap each unswapped rank with a random partner
            // within the window.
            let mut swapped = vec![false; m];
            for r in 0..m {
                if swapped[r] {
                    continue;
                }
                let hi = (r + max_offset).min(m - 1);
                if hi == r {
                    continue;
                }
                let partner = rng.random_range(r..=hi);
                if partner != r && !swapped[partner] {
                    let (a, b) = (order[r], order[partner]);
                    out[(a, j)] = column[b];
                    out[(b, j)] = column[a];
                    swapped[r] = true;
                    swapped[partner] = true;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn data() -> Matrix {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, 100.0 - i as f64]).collect();
        Matrix::from_row_iter(rows).unwrap()
    }

    #[test]
    fn validates_window() {
        assert!(RankSwap::new(0.0).is_err());
        assert!(RankSwap::new(1.5).is_err());
        assert!(RankSwap::new(f64::NAN).is_err());
        assert!(RankSwap::new(0.2).is_ok());
    }

    #[test]
    fn preserves_marginal_multiset() {
        let d = data();
        let p = RankSwap::new(0.3)
            .unwrap()
            .perturb(&d, &mut rng(1))
            .unwrap();
        for j in 0..d.cols() {
            let mut orig = d.column(j);
            let mut released = p.column(j);
            orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
            released.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(orig, released, "column {j} multiset changed");
        }
    }

    #[test]
    fn actually_moves_values() {
        let d = data();
        let p = RankSwap::new(0.3)
            .unwrap()
            .perturb(&d, &mut rng(2))
            .unwrap();
        assert!(p.max_abs_diff(&d).unwrap() > 0.5);
    }

    #[test]
    fn small_window_small_displacement() {
        let d = data();
        // Window of 2 ranks: values move at most 2 positions in a column
        // whose sorted gaps are 1.0 — displacement bounded by 2.
        let p = RankSwap::new(2.0 / 50.0)
            .unwrap()
            .perturb(&d, &mut rng(3))
            .unwrap();
        let max_disp = p.max_abs_diff(&d).unwrap();
        assert!(max_disp <= 2.0 + 1e-12, "displacement {max_disp}");
    }

    #[test]
    fn non_finite_input_is_a_typed_error() {
        let d = Matrix::from_rows(&[&[1.0, f64::NAN], &[2.0, 3.0]]).unwrap();
        assert!(matches!(
            RankSwap::new(0.5).unwrap().perturb(&d, &mut rng(0)),
            Err(Error::InvalidData(_))
        ));
    }

    #[test]
    fn tiny_inputs_are_noops_or_safe() {
        let one = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let p = RankSwap::new(0.5)
            .unwrap()
            .perturb(&one, &mut rng(0))
            .unwrap();
        assert!(p.approx_eq(&one, 0.0));
    }
}
