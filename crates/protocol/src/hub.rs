//! The federation hub: hosts coordinator + receiver behind a mailbox API.
//!
//! `rbt-server` embeds one [`FederationHub`] in its shared state and maps
//! the `Fed*` wire opcodes straight onto [`FederationHub::open`] /
//! [`FederationHub::exchange`] / [`FederationHub::result`]. Owners connect
//! as ordinary clients: each `exchange` call delivers the owner's outbound
//! messages and drains the owner's mailbox in return, so the whole round
//! protocol runs over simple request/response polling — no server-side
//! push needed.
//!
//! The hub is transport-blind: it never encodes or decodes wire frames,
//! only routes typed [`Message`]s between the parties it hosts.

use crate::coordinator::Coordinator;
use crate::messages::{JointSummary, Message, Outbound, Party};
use crate::receiver::{JointResult, Receiver};
use crate::{FederationConfig, ProtocolError, Result};
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Default idle lifetime of a hosted session: a session no owner has
/// exchanged with for this long is evictable when the hub needs the slot,
/// so abandoned `FedOpen`s cannot occupy capacity forever.
pub const DEFAULT_IDLE_TTL: Duration = Duration::from_secs(600);

/// One hosted session: the two hub-side parties plus per-owner mailboxes.
#[derive(Debug)]
struct HubSession {
    coordinator: Coordinator,
    receiver: Receiver,
    mailboxes: Vec<VecDeque<Message>>,
    /// Set when any party returned an error; the session is dead and every
    /// further exchange reports the same typed failure.
    failed: Option<ProtocolError>,
    /// Last open/exchange touching this session, for idle eviction.
    last_touched: Instant,
}

/// Hosts federated release sessions for a server.
#[derive(Debug)]
pub struct FederationHub {
    sessions: HashMap<u64, HubSession>,
    max_sessions: usize,
    idle_ttl: Duration,
}

impl FederationHub {
    /// Creates a hub admitting at most `max_sessions` concurrent sessions,
    /// with the [`DEFAULT_IDLE_TTL`].
    pub fn new(max_sessions: usize) -> Self {
        FederationHub {
            sessions: HashMap::new(),
            max_sessions: max_sessions.max(1),
            idle_ttl: DEFAULT_IDLE_TTL,
        }
    }

    /// Replaces the idle lifetime after which an untouched session becomes
    /// evictable under capacity pressure.
    pub fn with_idle_ttl(mut self, ttl: Duration) -> Self {
        self.idle_ttl = ttl;
        self
    }

    /// Number of currently hosted sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the hub hosts no sessions.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Opens a session: constructs coordinator + receiver and queues the
    /// `Announce` round into the owner mailboxes.
    ///
    /// A full hub first evicts sessions that can no longer make progress —
    /// poisoned (failed) ones and sessions idle past the hub's TTL — so a
    /// burst of junk `FedOpen`s cannot block federation service
    /// permanently. Owners of an evicted session see
    /// [`ProtocolError::UnknownSession`] on their next exchange.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::SessionExists`] for a duplicate id,
    /// [`ProtocolError::InvalidConfig`] for a rejected configuration or a
    /// full hub.
    pub fn open(&mut self, config: FederationConfig) -> Result<()> {
        if self.sessions.contains_key(&config.session) {
            return Err(ProtocolError::SessionExists(config.session));
        }
        if self.sessions.len() >= self.max_sessions {
            let now = Instant::now();
            let ttl = self.idle_ttl;
            self.sessions
                .retain(|_, s| s.failed.is_none() && now.duration_since(s.last_touched) < ttl);
        }
        if self.sessions.len() >= self.max_sessions {
            return Err(ProtocolError::InvalidConfig(format!(
                "hub at capacity ({} sessions)",
                self.max_sessions
            )));
        }
        let coordinator = Coordinator::new(config.clone())?;
        let receiver = Receiver::new(config.session);
        let mut session = HubSession {
            coordinator,
            receiver,
            mailboxes: (0..config.owners).map(|_| VecDeque::new()).collect(),
            failed: None,
            last_touched: Instant::now(),
        };
        // `start` can only fail on a double start, which a fresh
        // coordinator cannot hit.
        let outs = session.coordinator.start()?;
        route(&mut session, outs)?;
        self.sessions.insert(config.session, session);
        Ok(())
    }

    /// Delivers `inbound` owner messages and drains owner `owner`'s
    /// mailbox.
    ///
    /// Every inbound message must claim `owner` as its originator (the
    /// `Join`/`OwnerRelease` owner field, the chain-ack turn field): a
    /// client knowing only the session id cannot fabricate another owner's
    /// contributions. A mismatch is rejected **without** poisoning the
    /// session, so an impersonation attempt cannot stall honest owners.
    ///
    /// Owner messages are routed by kind: joins and chain acks to the
    /// coordinator, releases to the receiver. Anything else — or any party
    /// rejecting a message — poisons the session with a typed error that
    /// every subsequent exchange repeats.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownSession`], [`ProtocolError::OwnerOutOfRange`],
    /// [`ProtocolError::OwnerMismatch`], or the session's (first) protocol
    /// failure.
    pub fn exchange(
        &mut self,
        session: u64,
        owner: u16,
        inbound: Vec<Message>,
    ) -> Result<Vec<Message>> {
        let s = self
            .sessions
            .get_mut(&session)
            .ok_or(ProtocolError::UnknownSession(session))?;
        if owner as usize >= s.mailboxes.len() {
            return Err(ProtocolError::OwnerOutOfRange {
                owner,
                owners: s.mailboxes.len() as u16,
            });
        }
        s.last_touched = Instant::now();
        if let Some(e) = &s.failed {
            return Err(e.clone());
        }
        for msg in inbound {
            if let Some(claimed) = claimed_owner(&msg) {
                if claimed != owner {
                    return Err(ProtocolError::OwnerMismatch {
                        claimed,
                        exchanging: owner,
                    });
                }
            }
            if let Err(e) = deliver_owner_message(s, msg) {
                s.failed = Some(e.clone());
                return Err(e);
            }
        }
        Ok(s.mailboxes[owner as usize].drain(..).collect())
    }

    /// The joint clustering summary of `session`, if its receiver has
    /// completed (`None` while the protocol is still in flight).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownSession`], or the session's failure.
    pub fn result(&self, session: u64) -> Result<Option<&JointSummary>> {
        let s = self
            .sessions
            .get(&session)
            .ok_or(ProtocolError::UnknownSession(session))?;
        if let Some(e) = &s.failed {
            return Err(e.clone());
        }
        Ok(s.coordinator.summary())
    }

    /// The receiver's full joint result (matrix + labels), if complete.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownSession`], or the session's failure.
    pub fn joint_result(&self, session: u64) -> Result<Option<&JointResult>> {
        let s = self
            .sessions
            .get(&session)
            .ok_or(ProtocolError::UnknownSession(session))?;
        if let Some(e) = &s.failed {
            return Err(e.clone());
        }
        Ok(s.receiver.result())
    }

    /// Closes `session`, dropping all its state. Returns whether it
    /// existed.
    pub fn close(&mut self, session: u64) -> bool {
        self.sessions.remove(&session).is_some()
    }
}

/// The owner index a message claims to originate from (`None` for kinds
/// that are not owner-originated).
fn claimed_owner(msg: &Message) -> Option<u16> {
    match msg {
        Message::Join { owner, .. } | Message::OwnerRelease { owner, .. } => Some(*owner),
        Message::NormChainAck { turn, .. } | Message::PairChainAck { turn, .. } => Some(*turn),
        _ => None,
    }
}

/// Routes one message arriving from an owner-side client.
fn deliver_owner_message(s: &mut HubSession, msg: Message) -> Result<()> {
    let outs = match msg {
        msg @ (Message::Join { .. }
        | Message::NormChainAck { .. }
        | Message::PairChainAck { .. }) => s.coordinator.handle(&msg)?,
        msg @ Message::OwnerRelease { .. } => s.receiver.handle(msg)?,
        other => {
            return Err(ProtocolError::UnexpectedMessage {
                party: "hub".into(),
                state: "routing".into(),
                message: format!("{} is not an owner-originated message", other.kind()),
            })
        }
    };
    route(s, outs)
}

/// Drains a batch of outbound messages: owner-bound ones land in
/// mailboxes, hub-side ones are handled immediately (worklist, so a
/// receiver completion can cascade into the coordinator).
fn route(s: &mut HubSession, outs: Vec<Outbound>) -> Result<()> {
    let mut work: VecDeque<Outbound> = outs.into();
    while let Some(out) = work.pop_front() {
        match out.to {
            Party::Owner(o) => {
                let idx = o as usize;
                if idx >= s.mailboxes.len() {
                    return Err(ProtocolError::OwnerOutOfRange {
                        owner: o,
                        owners: s.mailboxes.len() as u16,
                    });
                }
                s.mailboxes[idx].push_back(out.msg);
            }
            Party::Coordinator => work.extend(s.coordinator.handle(&out.msg)?),
            Party::Receiver => work.extend(s.receiver.handle(out.msg)?),
        }
    }
    Ok(())
}
