//! The federation hub: hosts coordinator + receiver behind a mailbox API.
//!
//! `rbt-server` embeds one [`FederationHub`] in its shared state and maps
//! the `Fed*` wire opcodes straight onto [`FederationHub::open`] /
//! [`FederationHub::exchange`] / [`FederationHub::result`]. Owners connect
//! as ordinary clients: each `exchange` call delivers the owner's outbound
//! messages and drains the owner's mailbox in return, so the whole round
//! protocol runs over simple request/response polling — no server-side
//! push needed.
//!
//! The hub is transport-blind: it never encodes or decodes wire frames,
//! only routes typed [`Message`]s between the parties it hosts.

use crate::coordinator::Coordinator;
use crate::messages::{JointSummary, Message, Outbound, Party};
use crate::receiver::{JointResult, Receiver};
use crate::{FederationConfig, ProtocolError, Result};
use std::collections::{HashMap, VecDeque};

/// One hosted session: the two hub-side parties plus per-owner mailboxes.
#[derive(Debug)]
struct HubSession {
    coordinator: Coordinator,
    receiver: Receiver,
    mailboxes: Vec<VecDeque<Message>>,
    /// Set when any party returned an error; the session is dead and every
    /// further exchange reports the same typed failure.
    failed: Option<ProtocolError>,
}

/// Hosts federated release sessions for a server.
#[derive(Debug)]
pub struct FederationHub {
    sessions: HashMap<u64, HubSession>,
    max_sessions: usize,
}

impl FederationHub {
    /// Creates a hub admitting at most `max_sessions` concurrent sessions.
    pub fn new(max_sessions: usize) -> Self {
        FederationHub {
            sessions: HashMap::new(),
            max_sessions: max_sessions.max(1),
        }
    }

    /// Number of currently hosted sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the hub hosts no sessions.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Opens a session: constructs coordinator + receiver and queues the
    /// `Announce` round into the owner mailboxes.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::SessionExists`] for a duplicate id,
    /// [`ProtocolError::InvalidConfig`] for a rejected configuration or a
    /// full hub.
    pub fn open(&mut self, config: FederationConfig) -> Result<()> {
        if self.sessions.contains_key(&config.session) {
            return Err(ProtocolError::SessionExists(config.session));
        }
        if self.sessions.len() >= self.max_sessions {
            return Err(ProtocolError::InvalidConfig(format!(
                "hub at capacity ({} sessions)",
                self.max_sessions
            )));
        }
        let coordinator = Coordinator::new(config.clone())?;
        let receiver = Receiver::new(config.session);
        let mut session = HubSession {
            coordinator,
            receiver,
            mailboxes: (0..config.owners).map(|_| VecDeque::new()).collect(),
            failed: None,
        };
        // `start` can only fail on a double start, which a fresh
        // coordinator cannot hit.
        let outs = session.coordinator.start()?;
        route(&mut session, outs)?;
        self.sessions.insert(config.session, session);
        Ok(())
    }

    /// Delivers `inbound` owner messages and drains owner `owner`'s
    /// mailbox.
    ///
    /// Owner messages are routed by kind: joins and chain acks to the
    /// coordinator, releases to the receiver. Anything else — or any party
    /// rejecting a message — poisons the session with a typed error that
    /// every subsequent exchange repeats.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownSession`], [`ProtocolError::OwnerOutOfRange`],
    /// or the session's (first) protocol failure.
    pub fn exchange(
        &mut self,
        session: u64,
        owner: u16,
        inbound: Vec<Message>,
    ) -> Result<Vec<Message>> {
        let s = self
            .sessions
            .get_mut(&session)
            .ok_or(ProtocolError::UnknownSession(session))?;
        if owner as usize >= s.mailboxes.len() {
            return Err(ProtocolError::OwnerOutOfRange {
                owner,
                owners: s.mailboxes.len() as u16,
            });
        }
        if let Some(e) = &s.failed {
            return Err(e.clone());
        }
        for msg in inbound {
            if let Err(e) = deliver_owner_message(s, msg) {
                s.failed = Some(e.clone());
                return Err(e);
            }
        }
        Ok(s.mailboxes[owner as usize].drain(..).collect())
    }

    /// The joint clustering summary of `session`, if its receiver has
    /// completed (`None` while the protocol is still in flight).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownSession`], or the session's failure.
    pub fn result(&self, session: u64) -> Result<Option<&JointSummary>> {
        let s = self
            .sessions
            .get(&session)
            .ok_or(ProtocolError::UnknownSession(session))?;
        if let Some(e) = &s.failed {
            return Err(e.clone());
        }
        Ok(s.coordinator.summary())
    }

    /// The receiver's full joint result (matrix + labels), if complete.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownSession`], or the session's failure.
    pub fn joint_result(&self, session: u64) -> Result<Option<&JointResult>> {
        let s = self
            .sessions
            .get(&session)
            .ok_or(ProtocolError::UnknownSession(session))?;
        if let Some(e) = &s.failed {
            return Err(e.clone());
        }
        Ok(s.receiver.result())
    }

    /// Closes `session`, dropping all its state. Returns whether it
    /// existed.
    pub fn close(&mut self, session: u64) -> bool {
        self.sessions.remove(&session).is_some()
    }
}

/// Routes one message arriving from an owner-side client.
fn deliver_owner_message(s: &mut HubSession, msg: Message) -> Result<()> {
    let outs = match &msg {
        Message::Join { .. } | Message::NormChainAck { .. } | Message::PairChainAck { .. } => {
            s.coordinator.handle(&msg)?
        }
        Message::OwnerRelease { .. } => s.receiver.handle(&msg)?,
        other => {
            return Err(ProtocolError::UnexpectedMessage {
                party: "hub".into(),
                state: "routing".into(),
                message: format!("{} is not an owner-originated message", other.kind()),
            })
        }
    };
    route(s, outs)
}

/// Drains a batch of outbound messages: owner-bound ones land in
/// mailboxes, hub-side ones are handled immediately (worklist, so a
/// receiver completion can cascade into the coordinator).
fn route(s: &mut HubSession, outs: Vec<Outbound>) -> Result<()> {
    let mut work: VecDeque<Outbound> = outs.into();
    while let Some(out) = work.pop_front() {
        match out.to {
            Party::Owner(o) => {
                let idx = o as usize;
                if idx >= s.mailboxes.len() {
                    return Err(ProtocolError::OwnerOutOfRange {
                        owner: o,
                        owners: s.mailboxes.len() as u16,
                    });
                }
                s.mailboxes[idx].push_back(out.msg);
            }
            Party::Coordinator => work.extend(s.coordinator.handle(&out.msg)?),
            Party::Receiver => work.extend(s.receiver.handle(&out.msg)?),
        }
    }
    Ok(())
}
