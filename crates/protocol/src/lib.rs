//! # rbt-protocol — multi-owner federated RBT release
//!
//! The paper's release pipeline assumes **one** data owner. The outsourced-
//! clustering literature it sits in assumes several owners holding
//! *horizontally partitioned* data (each owns a block of rows over the same
//! attributes) who want a third party to cluster the union without any owner
//! pooling raw rows. This crate implements that as a typed, deterministic
//! round protocol:
//!
//! 1. **Announce** — the [`Coordinator`] broadcasts the federation
//!    configuration (attributes, normalization, RBT parameters, key policy,
//!    seed) to every [`Owner`] and the [`Receiver`].
//! 2. **Shared normalization** — per-owner column statistics are merged by
//!    chaining a [`rbt_data::PartialFit`] accumulator through the owners in
//!    announced order. Only the aggregate fold state travels, never rows;
//!    because every fitter statistic is a sequential left fold, the merged
//!    normalizer is **bit-identical** to fitting the pooled matrix.
//! 3. **Key fit** — under [`KeyPolicy::Shared`] the pairwise variance
//!    profiles of the (progressively rotated) federated matrix are merged
//!    the same way ([`rbt_core::PairMoments`]), the coordinator solves each
//!    pair's security range and broadcasts the drawn angle, and every owner
//!    applies the same rotation locally. Under [`KeyPolicy::PerOwner`] each
//!    owner fits a private key on its own partition.
//! 4. **Owner release → joint dataset** — owners stream their transformed
//!    blocks to the receiver, which assembles the union in owner order and
//!    runs joint k-means.
//!
//! Every party is a **state machine**: construction puts it in its initial
//! state, and the only way forward is [`Owner::handle`] /
//! [`Coordinator::handle`] / [`Receiver::handle`] consuming a typed
//! [`Message`] and producing typed [`Outbound`] messages. Anything
//! unexpected — wrong session, wrong turn, duplicated round, missing
//! rotation — is a typed [`ProtocolError`], never silently divergent data.
//!
//! The crate is transport-agnostic: [`harness::InProcessFederation`] drives
//! 2–64 owners in memory (with deterministic fault injection), while
//! [`hub::FederationHub`] hosts the coordinator + receiver behind a
//! mailbox API that `rbt-server` exposes over its framed wire protocol.
//!
//! ## Determinism contract
//!
//! With [`KeyPolicy::Shared`], the federated release of N partitions is
//! **bit-identical** to the single-owner pooled
//! [`rbt_core::Pipeline`] baseline run with the same seed: identical
//! normalizer bytes, identical rotation angles, identical released matrix,
//! and therefore identical joint k-means labels and inertia. The golden
//! tests in the workspace root pin this for N ∈ {2, 3}.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod coordinator;
pub mod harness;
pub mod hub;
pub mod messages;
pub mod owner;
pub mod receiver;

pub use config::{FederationConfig, KeyPolicy};
pub use coordinator::Coordinator;
pub use harness::{FaultPlan, FederationRun, InProcessFederation};
pub use hub::FederationHub;
pub use messages::{JointSummary, Message, Outbound, Party};
pub use owner::Owner;
pub use receiver::{JointResult, Receiver};

use std::fmt;

/// Errors produced by the federated release protocol.
///
/// Every transport fault, ordering violation, or shape disagreement maps to
/// a variant here; a party never applies a message it cannot fully
/// validate, so a faulty exchange can fail the session but cannot corrupt
/// the joint dataset.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The federation configuration is malformed (owner count, attribute
    /// count, k-means parameters, or an unchainable normalization).
    InvalidConfig(String),
    /// A message arrived for a different session than the party belongs to.
    SessionMismatch {
        /// Session the party was constructed for.
        expected: u64,
        /// Session carried by the message.
        found: u64,
    },
    /// A message arrived that the party's current state cannot accept
    /// (wrong round, wrong turn, or out of order — e.g. after a dropped or
    /// reordered delivery).
    UnexpectedMessage {
        /// Which party rejected the message.
        party: String,
        /// The party's current state.
        state: String,
        /// Short description of the offending message.
        message: String,
    },
    /// A message for a round the party has already completed (duplicated
    /// delivery).
    DuplicateMessage {
        /// Which party rejected the message.
        party: String,
        /// Short description of the offending message.
        message: String,
    },
    /// An owner id outside the announced owner count.
    OwnerOutOfRange {
        /// The offending owner id.
        owner: u16,
        /// The announced owner count.
        owners: u16,
    },
    /// A hub exchange delivered a message claiming to originate from a
    /// different owner than the one the exchange was made for
    /// (impersonation attempt; the message is rejected without poisoning
    /// the session).
    OwnerMismatch {
        /// Owner index the message claims to originate from.
        claimed: u16,
        /// Owner index the exchange was made for.
        exchanging: u16,
    },
    /// Two parts of the federation disagreed on data shape.
    ShapeMismatch(String),
    /// A message or accumulator payload could not be decoded (truncation,
    /// checksum mismatch after corruption, unknown tag).
    Decode(rbt_linalg::codec::DecodeError),
    /// An underlying data-layer error (normalization fold/fit).
    Data(rbt_data::Error),
    /// An underlying RBT method error (pairing, empty security range, key).
    Method(rbt_core::Error),
    /// Joint clustering on the receiver failed.
    Cluster(String),
    /// The in-process harness drained its queue without the receiver
    /// completing — some message was dropped and the protocol cannot make
    /// progress (the deadlock-free alternative to waiting forever).
    Stalled {
        /// Messages delivered before the stall.
        delivered: usize,
        /// Which phase the coordinator was in.
        state: String,
    },
    /// The hub has no session with this id.
    UnknownSession(u64),
    /// The hub already hosts a session with this id.
    SessionExists(u64),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::InvalidConfig(msg) => write!(f, "invalid federation config: {msg}"),
            ProtocolError::SessionMismatch { expected, found } => {
                write!(
                    f,
                    "session mismatch: expected {expected:#x}, got {found:#x}"
                )
            }
            ProtocolError::UnexpectedMessage {
                party,
                state,
                message,
            } => write!(f, "{party} in state {state} cannot accept {message}"),
            ProtocolError::DuplicateMessage { party, message } => {
                write!(f, "{party} already processed {message}")
            }
            ProtocolError::OwnerOutOfRange { owner, owners } => {
                write!(
                    f,
                    "owner {owner} out of range (session has {owners} owners)"
                )
            }
            ProtocolError::OwnerMismatch {
                claimed,
                exchanging,
            } => {
                write!(
                    f,
                    "message claims owner {claimed} but was exchanged by owner {exchanging}"
                )
            }
            ProtocolError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            ProtocolError::Decode(e) => write!(f, "message decode error: {e}"),
            ProtocolError::Data(e) => write!(f, "data error: {e}"),
            ProtocolError::Method(e) => write!(f, "method error: {e}"),
            ProtocolError::Cluster(msg) => write!(f, "joint clustering error: {msg}"),
            ProtocolError::Stalled { delivered, state } => write!(
                f,
                "protocol stalled after {delivered} deliveries (coordinator in {state})"
            ),
            ProtocolError::UnknownSession(id) => write!(f, "unknown session {id:#x}"),
            ProtocolError::SessionExists(id) => write!(f, "session {id:#x} already open"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Decode(e) => Some(e),
            ProtocolError::Data(e) => Some(e),
            ProtocolError::Method(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rbt_linalg::codec::DecodeError> for ProtocolError {
    fn from(e: rbt_linalg::codec::DecodeError) -> Self {
        ProtocolError::Decode(e)
    }
}

impl From<rbt_data::Error> for ProtocolError {
    fn from(e: rbt_data::Error) -> Self {
        ProtocolError::Data(e)
    }
}

impl From<rbt_core::Error> for ProtocolError {
    fn from(e: rbt_core::Error) -> Self {
        ProtocolError::Method(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ProtocolError>;
