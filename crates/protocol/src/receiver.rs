//! The receiver party: assembles the joint release and clusters it.
//!
//! The receiver learns the session configuration from `Announce`, collects
//! one transformed block per owner (any arrival order; assembly is always
//! in announced owner order, i.e. pooled row order), and runs joint
//! k-means with the deterministic first-k initializer — so the joint
//! labels depend only on the joint matrix bits, which under a shared key
//! equal the pooled single-owner release.

use crate::config::FederationConfig;
use crate::messages::{JointSummary, Message, Outbound, Party};
use crate::{ProtocolError, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rbt_cluster::{KMeans, KMeansInit};
use rbt_linalg::Matrix;

/// The receiver's joint clustering output.
#[derive(Debug, Clone)]
pub struct JointResult {
    /// The assembled joint release (pooled row order).
    pub matrix: Matrix,
    /// Joint k-means labels, one per row.
    pub labels: Vec<usize>,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
    /// Iterations until convergence (or the cap).
    pub iterations: usize,
    /// Whether k-means converged before the iteration cap.
    pub converged: bool,
    /// Row ranges of each owner's block within [`Self::matrix`].
    pub owner_ranges: Vec<std::ops::Range<usize>>,
}

/// Phase of the receiver's state machine.
#[derive(Debug)]
enum State {
    /// Waiting for the coordinator's `Announce`.
    AwaitAnnounce,
    /// Collecting one block per owner.
    Collecting {
        cfg: FederationConfig,
        blocks: Vec<Option<Matrix>>,
    },
    /// Joint clustering done; terminal.
    Complete,
}

impl State {
    fn name(&self) -> &'static str {
        match self {
            State::AwaitAnnounce => "AwaitAnnounce",
            State::Collecting { .. } => "Collecting",
            State::Complete => "Complete",
        }
    }
}

/// The receiver party.
#[derive(Debug)]
pub struct Receiver {
    session: u64,
    state: State,
    result: Option<JointResult>,
}

impl Receiver {
    /// Creates a receiver for session `session`.
    pub fn new(session: u64) -> Self {
        Receiver {
            session,
            state: State::AwaitAnnounce,
            result: None,
        }
    }

    /// The receiver's current phase, for diagnostics.
    pub fn state_name(&self) -> &'static str {
        self.state.name()
    }

    /// The joint clustering result, once every owner has released.
    pub fn result(&self) -> Option<&JointResult> {
        self.result.as_ref()
    }

    fn unexpected(&self, message: &str) -> ProtocolError {
        ProtocolError::UnexpectedMessage {
            party: "receiver".into(),
            state: self.state.name().into(),
            message: message.into(),
        }
    }

    /// Consumes one message, advancing the state machine. Taking the
    /// message by value lets an `OwnerRelease` block move into the
    /// receiver instead of being cloned — for million-row federations the
    /// blocks dominate the protocol's memory.
    ///
    /// # Errors
    ///
    /// Typed [`ProtocolError`]s for session/shape/order violations or a
    /// failed joint clustering.
    pub fn handle(&mut self, msg: Message) -> Result<Vec<Outbound>> {
        if msg.session() != self.session {
            return Err(ProtocolError::SessionMismatch {
                expected: self.session,
                found: msg.session(),
            });
        }
        let kind = msg.kind();
        match msg {
            Message::Announce { config } => {
                if !matches!(self.state, State::AwaitAnnounce) {
                    return Err(ProtocolError::DuplicateMessage {
                        party: "receiver".into(),
                        message: kind.into(),
                    });
                }
                config.validate()?;
                self.state = State::Collecting {
                    blocks: vec![None; config.owners as usize],
                    cfg: config,
                };
                Ok(Vec::new())
            }
            Message::OwnerRelease { owner, matrix, .. } => {
                let State::Collecting { cfg, blocks } = &mut self.state else {
                    return Err(self.unexpected(kind));
                };
                let idx = owner as usize;
                if idx >= blocks.len() {
                    return Err(ProtocolError::OwnerOutOfRange {
                        owner,
                        owners: cfg.owners,
                    });
                }
                if blocks[idx].is_some() {
                    return Err(ProtocolError::DuplicateMessage {
                        party: "receiver".into(),
                        message: format!("OwnerRelease from owner {owner}"),
                    });
                }
                if matrix.cols() != cfg.n_cols {
                    return Err(ProtocolError::ShapeMismatch(format!(
                        "owner {owner} released {} attributes, session announced {}",
                        matrix.cols(),
                        cfg.n_cols
                    )));
                }
                if matrix.rows() == 0 {
                    return Err(ProtocolError::ShapeMismatch(format!(
                        "owner {owner} released an empty block"
                    )));
                }
                blocks[idx] = Some(matrix);
                if blocks.iter().any(|b| b.is_none()) {
                    return Ok(Vec::new());
                }
                // Last block in: assemble the union in owner order (pooled
                // row order) and cluster it.
                let cfg = cfg.clone();
                let blocks: Vec<Matrix> = match &mut self.state {
                    State::Collecting { blocks, .. } => {
                        blocks.iter_mut().map(|b| b.take().unwrap()).collect()
                    }
                    _ => unreachable!(),
                };
                let total_rows: usize = blocks.iter().map(Matrix::rows).sum();
                let mut owner_ranges = Vec::with_capacity(blocks.len());
                // Reserve the joint buffer once, then drop each block as
                // soon as it is copied in: peak residency stays near one
                // joint release, not two.
                let mut data = Vec::with_capacity(total_rows * cfg.n_cols);
                let mut rows = 0usize;
                for block in blocks {
                    owner_ranges.push(rows..rows + block.rows());
                    rows += block.rows();
                    data.extend_from_slice(block.as_slice());
                }
                let joint = Matrix::from_vec(rows, cfg.n_cols, data)
                    .map_err(|e| ProtocolError::ShapeMismatch(e.to_string()))?;
                let kmeans = KMeans::new(cfg.kmeans_k)
                    .map_err(|e| ProtocolError::Cluster(e.to_string()))?
                    .with_init(KMeansInit::FirstK)
                    .with_max_iters(cfg.kmeans_max_iters);
                let mut rng = StdRng::seed_from_u64(cfg.seed);
                let fit = kmeans
                    .fit(&joint, &mut rng)
                    .map_err(|e| ProtocolError::Cluster(e.to_string()))?;
                let summary = JointSummary {
                    rows: rows as u64,
                    cols: cfg.n_cols as u16,
                    labels: fit.labels.iter().map(|&l| l as u32).collect(),
                    inertia: fit.inertia,
                    iterations: fit.iterations as u32,
                    converged: fit.converged,
                };
                self.result = Some(JointResult {
                    matrix: joint,
                    labels: fit.labels,
                    inertia: fit.inertia,
                    iterations: fit.iterations,
                    converged: fit.converged,
                    owner_ranges,
                });
                self.state = State::Complete;
                Ok(vec![Outbound::new(
                    Party::Coordinator,
                    Message::JointDataset {
                        session: self.session,
                        summary,
                    },
                )])
            }
            other => Err(self.unexpected(other.kind())),
        }
    }
}
