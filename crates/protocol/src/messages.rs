//! Typed round messages and their checksummed binary codec.
//!
//! One message kind per protocol round. Every message carries the session
//! id; every encoded message ends with a CRC-32 over its body, so a
//! corrupted delivery fails [`Message::decode`] with a typed error instead
//! of reaching a party's state machine. (The wire layer has its own frame
//! CRC; this one also covers in-process and store-and-forward transports.)

use crate::config::FederationConfig;
use rbt_linalg::codec::{crc32, ByteReader, ByteWriter, DecodeError, DecodeResult};
use rbt_linalg::Matrix;
use std::fmt;

/// A protocol party, as a message destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Party {
    /// The session coordinator (drives rounds, holds the announced config).
    Coordinator,
    /// A data owner, by announced index.
    Owner(u16),
    /// The third party receiving the joint release.
    Receiver,
}

impl fmt::Display for Party {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Party::Coordinator => write!(f, "coordinator"),
            Party::Owner(i) => write!(f, "owner {i}"),
            Party::Receiver => write!(f, "receiver"),
        }
    }
}

/// A message queued for delivery to a party.
#[derive(Debug, Clone, PartialEq)]
pub struct Outbound {
    /// Destination party.
    pub to: Party,
    /// The message itself.
    pub msg: Message,
}

impl Outbound {
    /// Convenience constructor.
    pub fn new(to: Party, msg: Message) -> Self {
        Outbound { to, msg }
    }
}

/// Summary of the receiver's joint clustering, reported back to the
/// coordinator (and served over the wire as the session result).
#[derive(Debug, Clone, PartialEq)]
pub struct JointSummary {
    /// Total rows clustered across all owners.
    pub rows: u64,
    /// Shared attribute count.
    pub cols: u16,
    /// Joint k-means labels, in pooled row order.
    pub labels: Vec<u32>,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
    /// Iterations until convergence (or the cap).
    pub iterations: u32,
    /// Whether k-means converged before the iteration cap.
    pub converged: bool,
}

/// A typed protocol round message.
///
/// The chain rounds (`NormChain*`, `PairChain*`) carry opaque accumulator
/// bytes (a serialized [`rbt_data::PartialFit`] or
/// [`rbt_core::PairMoments`]); owners decode, fold their block, and
/// re-encode, so raw rows never travel.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Message {
    /// Round 0, coordinator → everyone: the full session configuration.
    Announce {
        /// The announced configuration (carries the session id).
        config: FederationConfig,
    },
    /// Owner → coordinator: the owner is present and holds `rows` rows.
    Join {
        /// Session id.
        session: u64,
        /// The joining owner.
        owner: u16,
        /// Rows in the owner's partition.
        rows: u64,
    },
    /// Coordinator → owner `turn`: fold your block into the normalization
    /// accumulator (`pass` ∈ {1, 2}; z-score fits need two passes).
    NormChain {
        /// Session id.
        session: u64,
        /// Fold pass (1 = sums/extrema, 2 = centred moments).
        pass: u8,
        /// Owner whose turn it is.
        turn: u16,
        /// Serialized [`rbt_data::PartialFit`] state.
        acc: Vec<u8>,
    },
    /// Owner `turn` → coordinator: the accumulator with my block folded in.
    NormChainAck {
        /// Session id.
        session: u64,
        /// Fold pass being acknowledged.
        pass: u8,
        /// The acknowledging owner.
        turn: u16,
        /// Serialized [`rbt_data::PartialFit`] state.
        acc: Vec<u8>,
    },
    /// Coordinator → owners: the finished shared normalizer.
    SharedNormalization {
        /// Session id.
        session: u64,
        /// Serialized [`rbt_data::FittedNormalizer`].
        normalizer: Vec<u8>,
    },
    /// Coordinator → owner `turn`: fold columns `(i, j)` of your current
    /// (normalized, partially rotated) block into the pair-moments
    /// accumulator. Only under [`crate::KeyPolicy::Shared`].
    PairChain {
        /// Session id.
        session: u64,
        /// Pair index in pairing order.
        pair: u16,
        /// First attribute of the pair.
        i: u16,
        /// Second attribute of the pair.
        j: u16,
        /// Fold pass (1 = sums, 2 = centred moments).
        pass: u8,
        /// Owner whose turn it is.
        turn: u16,
        /// Serialized [`rbt_core::PairMoments`] state.
        acc: Vec<u8>,
    },
    /// Owner `turn` → coordinator: the pair accumulator with my block
    /// folded in.
    PairChainAck {
        /// Session id.
        session: u64,
        /// Pair index being acknowledged.
        pair: u16,
        /// Fold pass being acknowledged.
        pass: u8,
        /// The acknowledging owner.
        turn: u16,
        /// Serialized [`rbt_core::PairMoments`] state.
        acc: Vec<u8>,
    },
    /// Coordinator → owners: rotate columns `(i, j)` by the drawn angle.
    /// The achieved perturbation variances ride along so every owner
    /// records the identical key step.
    ApplyRotation {
        /// Session id.
        session: u64,
        /// Pair index in pairing order.
        pair: u16,
        /// First attribute of the pair.
        i: u16,
        /// Second attribute of the pair.
        j: u16,
        /// The drawn rotation angle, degrees.
        theta_degrees: f64,
        /// Achieved `Var(Ai − Ai')`.
        achieved_var1: f64,
        /// Achieved `Var(Aj − Aj')`.
        achieved_var2: f64,
    },
    /// Coordinator → owners: the key fit is complete after `pairs`
    /// rotations (0 under [`crate::KeyPolicy::PerOwner`]) — release your
    /// block to the receiver. The pair count lets an owner that missed a
    /// rotation refuse to release under-rotated data.
    FitComplete {
        /// Session id.
        session: u64,
        /// Rotations every owner must have applied (shared-key mode).
        pairs: u16,
    },
    /// Owner → receiver: the owner's transformed, anonymized block.
    OwnerRelease {
        /// Session id.
        session: u64,
        /// The releasing owner.
        owner: u16,
        /// The transformed block (rows × shared attributes).
        matrix: Matrix,
    },
    /// Receiver → coordinator: the joint clustering summary.
    JointDataset {
        /// Session id.
        session: u64,
        /// The clustering summary.
        summary: JointSummary,
    },
}

const TAG_ANNOUNCE: u8 = 1;
const TAG_JOIN: u8 = 2;
const TAG_NORM_CHAIN: u8 = 3;
const TAG_NORM_CHAIN_ACK: u8 = 4;
const TAG_SHARED_NORMALIZATION: u8 = 5;
const TAG_PAIR_CHAIN: u8 = 6;
const TAG_PAIR_CHAIN_ACK: u8 = 7;
const TAG_APPLY_ROTATION: u8 = 8;
const TAG_FIT_COMPLETE: u8 = 9;
const TAG_OWNER_RELEASE: u8 = 10;
const TAG_JOINT_DATASET: u8 = 11;

/// Upper bound accepted for matrix/label/accumulator lengths while
/// decoding, so a corrupted length field cannot trigger a huge allocation.
const MAX_DECODE_ELEMS: usize = 1 << 28;

/// Writes `m` as `rows (u64) · cols (u16) · row-major f64s`.
pub fn encode_matrix(m: &Matrix, w: &mut ByteWriter) {
    w.put_u64(m.rows() as u64);
    w.put_u16(m.cols() as u16);
    for &v in m.as_slice() {
        w.put_f64(v);
    }
}

/// Reads a matrix written by [`encode_matrix`].
///
/// # Errors
///
/// [`DecodeError`] on truncation or an implausible element count.
pub fn decode_matrix(r: &mut ByteReader<'_>) -> DecodeResult<Matrix> {
    let offset = r.position();
    let rows = r.take_u64()? as usize;
    let cols = r.take_u16()? as usize;
    let elems = rows.checked_mul(cols).filter(|&e| e <= MAX_DECODE_ELEMS);
    let elems = elems.ok_or_else(|| DecodeError::Malformed {
        offset,
        message: format!("implausible matrix shape {rows}×{cols}"),
    })?;
    let mut data = Vec::with_capacity(elems);
    for _ in 0..elems {
        data.push(r.take_f64()?);
    }
    Matrix::from_vec(rows, cols, data).map_err(|e| DecodeError::Malformed {
        offset,
        message: e.to_string(),
    })
}

fn put_blob(w: &mut ByteWriter, bytes: &[u8]) {
    w.put_usize(bytes.len());
    w.put_bytes(bytes);
}

fn take_blob(r: &mut ByteReader<'_>) -> DecodeResult<Vec<u8>> {
    let offset = r.position();
    let len = r.take_usize()?;
    if len > MAX_DECODE_ELEMS {
        return Err(DecodeError::Malformed {
            offset,
            message: format!("implausible payload length {len}"),
        });
    }
    Ok(r.take_bytes(len)?.to_vec())
}

impl Message {
    /// The session id this message belongs to.
    pub fn session(&self) -> u64 {
        match self {
            Message::Announce { config } => config.session,
            Message::Join { session, .. }
            | Message::NormChain { session, .. }
            | Message::NormChainAck { session, .. }
            | Message::SharedNormalization { session, .. }
            | Message::PairChain { session, .. }
            | Message::PairChainAck { session, .. }
            | Message::ApplyRotation { session, .. }
            | Message::FitComplete { session, .. }
            | Message::OwnerRelease { session, .. }
            | Message::JointDataset { session, .. } => *session,
        }
    }

    /// A short human-readable label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Announce { .. } => "Announce",
            Message::Join { .. } => "Join",
            Message::NormChain { .. } => "NormChain",
            Message::NormChainAck { .. } => "NormChainAck",
            Message::SharedNormalization { .. } => "SharedNormalization",
            Message::PairChain { .. } => "PairChain",
            Message::PairChainAck { .. } => "PairChainAck",
            Message::ApplyRotation { .. } => "ApplyRotation",
            Message::FitComplete { .. } => "FitComplete",
            Message::OwnerRelease { .. } => "OwnerRelease",
            Message::JointDataset { .. } => "JointDataset",
        }
    }

    /// Serializes the message: tagged body followed by a CRC-32 trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Message::Announce { config } => {
                w.put_u8(TAG_ANNOUNCE);
                config.encode_into(&mut w);
            }
            Message::Join {
                session,
                owner,
                rows,
            } => {
                w.put_u8(TAG_JOIN);
                w.put_u64(*session);
                w.put_u16(*owner);
                w.put_u64(*rows);
            }
            Message::NormChain {
                session,
                pass,
                turn,
                acc,
            } => {
                w.put_u8(TAG_NORM_CHAIN);
                w.put_u64(*session);
                w.put_u8(*pass);
                w.put_u16(*turn);
                put_blob(&mut w, acc);
            }
            Message::NormChainAck {
                session,
                pass,
                turn,
                acc,
            } => {
                w.put_u8(TAG_NORM_CHAIN_ACK);
                w.put_u64(*session);
                w.put_u8(*pass);
                w.put_u16(*turn);
                put_blob(&mut w, acc);
            }
            Message::SharedNormalization {
                session,
                normalizer,
            } => {
                w.put_u8(TAG_SHARED_NORMALIZATION);
                w.put_u64(*session);
                put_blob(&mut w, normalizer);
            }
            Message::PairChain {
                session,
                pair,
                i,
                j,
                pass,
                turn,
                acc,
            } => {
                w.put_u8(TAG_PAIR_CHAIN);
                w.put_u64(*session);
                w.put_u16(*pair);
                w.put_u16(*i);
                w.put_u16(*j);
                w.put_u8(*pass);
                w.put_u16(*turn);
                put_blob(&mut w, acc);
            }
            Message::PairChainAck {
                session,
                pair,
                pass,
                turn,
                acc,
            } => {
                w.put_u8(TAG_PAIR_CHAIN_ACK);
                w.put_u64(*session);
                w.put_u16(*pair);
                w.put_u8(*pass);
                w.put_u16(*turn);
                put_blob(&mut w, acc);
            }
            Message::ApplyRotation {
                session,
                pair,
                i,
                j,
                theta_degrees,
                achieved_var1,
                achieved_var2,
            } => {
                w.put_u8(TAG_APPLY_ROTATION);
                w.put_u64(*session);
                w.put_u16(*pair);
                w.put_u16(*i);
                w.put_u16(*j);
                w.put_f64(*theta_degrees);
                w.put_f64(*achieved_var1);
                w.put_f64(*achieved_var2);
            }
            Message::FitComplete { session, pairs } => {
                w.put_u8(TAG_FIT_COMPLETE);
                w.put_u64(*session);
                w.put_u16(*pairs);
            }
            Message::OwnerRelease {
                session,
                owner,
                matrix,
            } => {
                w.put_u8(TAG_OWNER_RELEASE);
                w.put_u64(*session);
                w.put_u16(*owner);
                encode_matrix(matrix, &mut w);
            }
            Message::JointDataset { session, summary } => {
                w.put_u8(TAG_JOINT_DATASET);
                w.put_u64(*session);
                w.put_u64(summary.rows);
                w.put_u16(summary.cols);
                w.put_usize(summary.labels.len());
                for &l in &summary.labels {
                    w.put_u32(l);
                }
                w.put_f64(summary.inertia);
                w.put_u32(summary.iterations);
                w.put_bool(summary.converged);
            }
        }
        let crc = crc32(w.as_bytes());
        w.put_u32(crc);
        w.into_bytes()
    }

    /// Decodes a message written by [`encode`](Self::encode), verifying the
    /// CRC-32 trailer first.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation, checksum mismatch (corruption),
    /// unknown tag, or trailing garbage.
    pub fn decode(bytes: &[u8]) -> DecodeResult<Self> {
        if bytes.len() < 5 {
            return Err(DecodeError::Truncated {
                offset: 0,
                needed: 5,
                available: bytes.len(),
            });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let expected = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let actual = crc32(body);
        if expected != actual {
            return Err(DecodeError::Malformed {
                offset: body.len(),
                message: format!(
                    "message checksum mismatch: stored {expected:#010x}, computed {actual:#010x}"
                ),
            });
        }
        let mut r = ByteReader::new(body);
        let tag = r.take_u8()?;
        let msg = match tag {
            TAG_ANNOUNCE => Message::Announce {
                config: FederationConfig::decode_from(&mut r)?,
            },
            TAG_JOIN => Message::Join {
                session: r.take_u64()?,
                owner: r.take_u16()?,
                rows: r.take_u64()?,
            },
            TAG_NORM_CHAIN => Message::NormChain {
                session: r.take_u64()?,
                pass: r.take_u8()?,
                turn: r.take_u16()?,
                acc: take_blob(&mut r)?,
            },
            TAG_NORM_CHAIN_ACK => Message::NormChainAck {
                session: r.take_u64()?,
                pass: r.take_u8()?,
                turn: r.take_u16()?,
                acc: take_blob(&mut r)?,
            },
            TAG_SHARED_NORMALIZATION => Message::SharedNormalization {
                session: r.take_u64()?,
                normalizer: take_blob(&mut r)?,
            },
            TAG_PAIR_CHAIN => Message::PairChain {
                session: r.take_u64()?,
                pair: r.take_u16()?,
                i: r.take_u16()?,
                j: r.take_u16()?,
                pass: r.take_u8()?,
                turn: r.take_u16()?,
                acc: take_blob(&mut r)?,
            },
            TAG_PAIR_CHAIN_ACK => Message::PairChainAck {
                session: r.take_u64()?,
                pair: r.take_u16()?,
                pass: r.take_u8()?,
                turn: r.take_u16()?,
                acc: take_blob(&mut r)?,
            },
            TAG_APPLY_ROTATION => Message::ApplyRotation {
                session: r.take_u64()?,
                pair: r.take_u16()?,
                i: r.take_u16()?,
                j: r.take_u16()?,
                theta_degrees: r.take_f64()?,
                achieved_var1: r.take_f64()?,
                achieved_var2: r.take_f64()?,
            },
            TAG_FIT_COMPLETE => Message::FitComplete {
                session: r.take_u64()?,
                pairs: r.take_u16()?,
            },
            TAG_OWNER_RELEASE => Message::OwnerRelease {
                session: r.take_u64()?,
                owner: r.take_u16()?,
                matrix: decode_matrix(&mut r)?,
            },
            TAG_JOINT_DATASET => {
                let session = r.take_u64()?;
                let rows = r.take_u64()?;
                let cols = r.take_u16()?;
                let offset = r.position();
                let n = r.take_usize()?;
                if n > MAX_DECODE_ELEMS {
                    return Err(DecodeError::Malformed {
                        offset,
                        message: format!("implausible label count {n}"),
                    });
                }
                let mut labels = Vec::with_capacity(n);
                for _ in 0..n {
                    labels.push(r.take_u32()?);
                }
                Message::JointDataset {
                    session,
                    summary: JointSummary {
                        rows,
                        cols,
                        labels,
                        inertia: r.take_f64()?,
                        iterations: r.take_u32()?,
                        converged: r.take_bool()?,
                    },
                }
            }
            other => {
                return Err(DecodeError::Malformed {
                    offset: 0,
                    message: format!("unknown message tag {other}"),
                })
            }
        };
        r.expect_end()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KeyPolicy;
    use rbt_core::{PairwiseSecurityThreshold, RbtConfig};
    use rbt_data::Normalization;

    fn sample_messages() -> Vec<Message> {
        let config = FederationConfig {
            session: 7,
            n_cols: 4,
            owners: 2,
            normalization: Normalization::min_max_unit(),
            rbt: RbtConfig::uniform(PairwiseSecurityThreshold::new(0.2, 0.2).unwrap()),
            key_policy: KeyPolicy::Shared,
            seed: 99,
            kmeans_k: 2,
            kmeans_max_iters: 50,
        };
        vec![
            Message::Announce { config },
            Message::Join {
                session: 7,
                owner: 1,
                rows: 123,
            },
            Message::NormChain {
                session: 7,
                pass: 1,
                turn: 0,
                acc: vec![1, 2, 3],
            },
            Message::NormChainAck {
                session: 7,
                pass: 2,
                turn: 1,
                acc: vec![],
            },
            Message::SharedNormalization {
                session: 7,
                normalizer: vec![9; 40],
            },
            Message::PairChain {
                session: 7,
                pair: 1,
                i: 2,
                j: 3,
                pass: 1,
                turn: 0,
                acc: vec![4, 5],
            },
            Message::PairChainAck {
                session: 7,
                pair: 1,
                pass: 2,
                turn: 1,
                acc: vec![6],
            },
            Message::ApplyRotation {
                session: 7,
                pair: 0,
                i: 0,
                j: 1,
                theta_degrees: 101.25,
                achieved_var1: 0.31,
                achieved_var2: 0.57,
            },
            Message::FitComplete {
                session: 7,
                pairs: 2,
            },
            Message::OwnerRelease {
                session: 7,
                owner: 0,
                matrix: Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap(),
            },
            Message::JointDataset {
                session: 7,
                summary: JointSummary {
                    rows: 2,
                    cols: 2,
                    labels: vec![0, 1],
                    inertia: 0.25,
                    iterations: 3,
                    converged: true,
                },
            },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in sample_messages() {
            let bytes = msg.encode();
            let back = Message::decode(&bytes)
                .unwrap_or_else(|e| panic!("{} failed to round-trip: {e}", msg.kind()));
            assert_eq!(back, msg, "{}", msg.kind());
            assert_eq!(back.session(), 7);
        }
    }

    #[test]
    fn any_single_byte_flip_is_detected() {
        for msg in sample_messages() {
            let bytes = msg.encode();
            // Flip one byte at a spread of positions, including the CRC
            // trailer itself: every flip must surface as a decode error.
            for pos in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[pos] ^= 0x41;
                assert!(
                    Message::decode(&bad).is_err(),
                    "{} byte {pos} flip went undetected",
                    msg.kind()
                );
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = Message::FitComplete {
            session: 7,
            pairs: 1,
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(Message::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn matrix_decode_rejects_implausible_shapes() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        w.put_u16(u16::MAX);
        let bytes = w.into_bytes();
        assert!(decode_matrix(&mut ByteReader::new(&bytes)).is_err());
    }
}
