//! The announced federation configuration.
//!
//! Every parameter that influences a single bit of the joint release is
//! fixed here, carried verbatim inside the [`Announce`](crate::Message)
//! round, and validated by every party — the protocol's determinism
//! contract starts with all parties agreeing on this record.

use crate::{ProtocolError, Result};
use rbt_core::{PairingStrategy, PairwiseSecurityThreshold, RbtConfig, ThresholdPolicy};
use rbt_data::Normalization;
use rbt_linalg::codec::{ByteReader, ByteWriter, DecodeError, DecodeResult};
use rbt_linalg::stats::VarianceMode;

/// Hard upper bound on the owner count a session may announce.
///
/// The protocol is sequential in the owner count (the stat chains visit
/// owners in order), so this bounds round counts, mailbox fan-out, and the
/// hub's per-session memory.
pub const MAX_OWNERS: u16 = 64;

/// Hard upper bound on the announced attribute count.
///
/// Column indices travel as `u16` in `PairChain`/`ApplyRotation` messages,
/// so a wider matrix could not be addressed on the wire — and the bound
/// keeps an unauthenticated `Announce`/`FedOpen` from driving huge
/// per-column allocations before any data arrives.
pub const MAX_COLS: usize = u16::MAX as usize;

/// Plausibility cap on the announced solver grid resolution (the default
/// is 1440; the cap bounds the per-pair solve loop).
pub const MAX_SOLVER_GRID: usize = 1 << 20;

/// Plausibility cap on the announced joint cluster count (bounds the
/// receiver's centroid allocation).
pub const MAX_KMEANS_K: usize = 1 << 12;

/// Plausibility cap on the announced joint k-means iteration budget.
pub const MAX_KMEANS_MAX_ITERS: usize = 1 << 20;

/// Who holds the transformation key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum KeyPolicy {
    /// One key, fitted jointly over the federated matrix and applied by
    /// every owner. The joint release is bit-identical to the pooled
    /// single-owner pipeline — and any one owner can invert **every**
    /// owner's block (the collusion surface `federated_collusion`
    /// measures).
    Shared,
    /// Each owner fits a private key on its own partition (seeded from the
    /// announced seed and the owner id). Collusion only enables linkage
    /// attacks, but blocks of different owners are no longer isometric to
    /// one another, so joint clustering is approximate.
    PerOwner,
}

/// The full configuration of a federated release session.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationConfig {
    /// Session identifier; every message carries it and every party checks
    /// it.
    pub session: u64,
    /// Number of shared attributes (columns) each owner holds.
    pub n_cols: usize,
    /// Number of owners; partitions are indexed `0..owners` in announced
    /// (pooled concatenation) order.
    pub owners: u16,
    /// The shared normalization method (fitted federatedly; robust z-score
    /// is rejected — median/MAD have no chainable sufficient statistic).
    pub normalization: Normalization,
    /// RBT parameters: pairing, thresholds, variance mode, solver grid.
    pub rbt: RbtConfig,
    /// Who holds the key.
    pub key_policy: KeyPolicy,
    /// Seed for the coordinator's angle/pairing draws (and, under
    /// [`KeyPolicy::PerOwner`], the base for per-owner key seeds).
    pub seed: u64,
    /// Number of joint clusters the receiver fits.
    pub kmeans_k: usize,
    /// Iteration cap of the receiver's joint k-means.
    pub kmeans_max_iters: usize,
}

impl FederationConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidConfig`] for an owner count outside
    /// `2..=MAX_OWNERS`, an attribute count outside `2..=MAX_COLS`,
    /// `kmeans_k` outside `1..=MAX_KMEANS_K`, an out-of-bounds solver grid
    /// or iteration budget, or a normalization with no chainable partial
    /// fit. All bounds are checked before anything is allocated, so an
    /// unauthenticated config cannot trigger an OOM here.
    pub fn validate(&self) -> Result<()> {
        if self.owners < 2 || self.owners > MAX_OWNERS {
            return Err(ProtocolError::InvalidConfig(format!(
                "owner count {} outside 2..={MAX_OWNERS}",
                self.owners
            )));
        }
        if self.n_cols < 2 || self.n_cols > MAX_COLS {
            return Err(ProtocolError::InvalidConfig(format!(
                "attribute count {} outside 2..={MAX_COLS}",
                self.n_cols
            )));
        }
        if self.rbt.solver_grid > MAX_SOLVER_GRID {
            return Err(ProtocolError::InvalidConfig(format!(
                "solver grid {} exceeds {MAX_SOLVER_GRID}",
                self.rbt.solver_grid
            )));
        }
        if self.kmeans_k == 0 || self.kmeans_k > MAX_KMEANS_K {
            return Err(ProtocolError::InvalidConfig(format!(
                "kmeans_k {} outside 1..={MAX_KMEANS_K}",
                self.kmeans_k
            )));
        }
        if self.kmeans_max_iters > MAX_KMEANS_MAX_ITERS {
            return Err(ProtocolError::InvalidConfig(format!(
                "kmeans_max_iters {} exceeds {MAX_KMEANS_MAX_ITERS}",
                self.kmeans_max_iters
            )));
        }
        // Surface an unchainable normalization at announce time, not
        // mid-chain: the partial fit is what the protocol is built on.
        self.normalization
            .begin_partial_fit(self.n_cols)
            .map_err(|e| ProtocolError::InvalidConfig(e.to_string()))?;
        Ok(())
    }

    /// The key-fit seed of `owner` under [`KeyPolicy::PerOwner`]:
    /// the announced seed mixed with the owner id (splitmix-style odd
    /// constant) so sibling owners never share an angle stream.
    pub fn owner_seed(&self, owner: u16) -> u64 {
        self.seed ^ 0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(u64::from(owner) + 1)
    }

    /// Serializes the configuration (the `Announce` payload).
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u64(self.session);
        w.put_usize(self.n_cols);
        w.put_u16(self.owners);
        encode_normalization(&self.normalization, w);
        encode_pairing(&self.rbt.pairing, w);
        encode_thresholds(&self.rbt.thresholds, w);
        w.put_u8(variance_mode_tag(self.rbt.variance_mode));
        w.put_usize(self.rbt.solver_grid);
        w.put_u8(match self.key_policy {
            KeyPolicy::Shared => 0,
            KeyPolicy::PerOwner => 1,
        });
        w.put_u64(self.seed);
        w.put_usize(self.kmeans_k);
        w.put_usize(self.kmeans_max_iters);
    }

    /// Decodes a configuration written by [`encode_into`](Self::encode_into).
    ///
    /// The size-like fields (`n_cols`, `solver_grid`, `kmeans_k`,
    /// `kmeans_max_iters`) are bounded here, at decode time, so an
    /// unauthenticated frame can never carry an allocation-driving count
    /// into [`validate`](Self::validate) or any party state machine.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation, an unknown tag, or an implausible
    /// size field.
    pub fn decode_from(r: &mut ByteReader<'_>) -> DecodeResult<Self> {
        let session = r.take_u64()?;
        let n_cols = take_bounded_usize(r, MAX_COLS, "attribute count")?;
        let owners = r.take_u16()?;
        let normalization = decode_normalization(r)?;
        let pairing = decode_pairing(r)?;
        let thresholds = decode_thresholds(r)?;
        let variance_mode = decode_variance_mode(r)?;
        let solver_grid = take_bounded_usize(r, MAX_SOLVER_GRID, "solver grid")?;
        let key_policy = match r.take_u8()? {
            0 => KeyPolicy::Shared,
            1 => KeyPolicy::PerOwner,
            tag => {
                return Err(DecodeError::Malformed {
                    offset: r.position().saturating_sub(1),
                    message: format!("unknown key policy tag {tag}"),
                })
            }
        };
        let seed = r.take_u64()?;
        let kmeans_k = take_bounded_usize(r, MAX_KMEANS_K, "kmeans_k")?;
        let kmeans_max_iters = take_bounded_usize(r, MAX_KMEANS_MAX_ITERS, "kmeans_max_iters")?;
        Ok(FederationConfig {
            session,
            n_cols,
            owners,
            normalization,
            rbt: RbtConfig {
                pairing,
                thresholds,
                variance_mode,
                solver_grid,
            },
            key_policy,
            seed,
            kmeans_k,
            kmeans_max_iters,
        })
    }
}

/// Reads a usize field and rejects values above `max` with a typed decode
/// error naming the field.
fn take_bounded_usize(r: &mut ByteReader<'_>, max: usize, what: &str) -> DecodeResult<usize> {
    let offset = r.position();
    let v = r.take_usize()?;
    if v > max {
        return Err(DecodeError::Malformed {
            offset,
            message: format!("implausible {what} {v} (max {max})"),
        });
    }
    Ok(v)
}

fn variance_mode_tag(mode: VarianceMode) -> u8 {
    match mode {
        VarianceMode::Sample => 0,
        VarianceMode::Population => 1,
    }
}

fn decode_variance_mode(r: &mut ByteReader<'_>) -> DecodeResult<VarianceMode> {
    match r.take_u8()? {
        0 => Ok(VarianceMode::Sample),
        1 => Ok(VarianceMode::Population),
        tag => Err(DecodeError::Malformed {
            offset: r.position().saturating_sub(1),
            message: format!("unknown variance mode tag {tag}"),
        }),
    }
}

fn encode_normalization(n: &Normalization, w: &mut ByteWriter) {
    match n {
        Normalization::MinMax { new_min, new_max } => {
            w.put_u8(0);
            w.put_f64(*new_min);
            w.put_f64(*new_max);
        }
        Normalization::ZScore { mode } => {
            w.put_u8(1);
            w.put_u8(variance_mode_tag(*mode));
        }
        Normalization::DecimalScaling => w.put_u8(2),
        Normalization::RobustZScore => w.put_u8(3),
        #[allow(unreachable_patterns)] // future #[non_exhaustive] variants
        _ => w.put_u8(u8::MAX),
    }
}

fn decode_normalization(r: &mut ByteReader<'_>) -> DecodeResult<Normalization> {
    match r.take_u8()? {
        0 => Ok(Normalization::MinMax {
            new_min: r.take_f64()?,
            new_max: r.take_f64()?,
        }),
        1 => Ok(Normalization::ZScore {
            mode: decode_variance_mode(r)?,
        }),
        2 => Ok(Normalization::DecimalScaling),
        3 => Ok(Normalization::RobustZScore),
        tag => Err(DecodeError::Malformed {
            offset: r.position().saturating_sub(1),
            message: format!("unknown normalization tag {tag}"),
        }),
    }
}

fn encode_pairing(p: &PairingStrategy, w: &mut ByteWriter) {
    match p {
        PairingStrategy::Sequential => w.put_u8(0),
        PairingStrategy::RandomShuffle => w.put_u8(1),
        PairingStrategy::Explicit(pairs) => {
            w.put_u8(2);
            w.put_usize(pairs.len());
            for &(i, j) in pairs {
                w.put_usize(i);
                w.put_usize(j);
            }
        }
        #[allow(unreachable_patterns)] // future #[non_exhaustive] variants
        _ => w.put_u8(u8::MAX),
    }
}

fn decode_pairing(r: &mut ByteReader<'_>) -> DecodeResult<PairingStrategy> {
    match r.take_u8()? {
        0 => Ok(PairingStrategy::Sequential),
        1 => Ok(PairingStrategy::RandomShuffle),
        2 => {
            let n = r.take_usize()?;
            if n > u16::MAX as usize {
                return Err(DecodeError::Malformed {
                    offset: r.position(),
                    message: format!("implausible explicit pairing length {n}"),
                });
            }
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let i = r.take_usize()?;
                let j = r.take_usize()?;
                pairs.push((i, j));
            }
            Ok(PairingStrategy::Explicit(pairs))
        }
        tag => Err(DecodeError::Malformed {
            offset: r.position().saturating_sub(1),
            message: format!("unknown pairing tag {tag}"),
        }),
    }
}

fn encode_thresholds(t: &ThresholdPolicy, w: &mut ByteWriter) {
    match t {
        ThresholdPolicy::Uniform(pst) => {
            w.put_u8(0);
            w.put_f64(pst.rho1);
            w.put_f64(pst.rho2);
        }
        ThresholdPolicy::PerPair(list) => {
            w.put_u8(1);
            w.put_usize(list.len());
            for pst in list {
                w.put_f64(pst.rho1);
                w.put_f64(pst.rho2);
            }
        }
        #[allow(unreachable_patterns)] // future #[non_exhaustive] variants
        _ => w.put_u8(u8::MAX),
    }
}

fn decode_thresholds(r: &mut ByteReader<'_>) -> DecodeResult<ThresholdPolicy> {
    fn pst(r: &mut ByteReader<'_>) -> DecodeResult<PairwiseSecurityThreshold> {
        let offset = r.position();
        let rho1 = r.take_f64()?;
        let rho2 = r.take_f64()?;
        PairwiseSecurityThreshold::new(rho1, rho2).map_err(|e| DecodeError::Malformed {
            offset,
            message: e.to_string(),
        })
    }
    match r.take_u8()? {
        0 => Ok(ThresholdPolicy::Uniform(pst(r)?)),
        1 => {
            let n = r.take_usize()?;
            if n > u16::MAX as usize {
                return Err(DecodeError::Malformed {
                    offset: r.position(),
                    message: format!("implausible threshold list length {n}"),
                });
            }
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                list.push(pst(r)?);
            }
            Ok(ThresholdPolicy::PerPair(list))
        }
        tag => Err(DecodeError::Malformed {
            offset: r.position().saturating_sub(1),
            message: format!("unknown threshold policy tag {tag}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_config() -> FederationConfig {
        FederationConfig {
            session: 0xfeed_beef,
            n_cols: 5,
            owners: 3,
            normalization: Normalization::zscore_paper(),
            rbt: RbtConfig::uniform(PairwiseSecurityThreshold::new(0.2, 0.2).unwrap())
                .with_pairing(PairingStrategy::Explicit(vec![(0, 1), (2, 3), (4, 0)]))
                .with_thresholds(ThresholdPolicy::PerPair(vec![
                    PairwiseSecurityThreshold::new(0.3, 0.55).unwrap(),
                    PairwiseSecurityThreshold::new(2.3, 2.3).unwrap(),
                    PairwiseSecurityThreshold::new(0.2, 0.2).unwrap(),
                ])),
            key_policy: KeyPolicy::PerOwner,
            seed: 42,
            kmeans_k: 3,
            kmeans_max_iters: 64,
        }
    }

    #[test]
    fn config_round_trips() {
        let cfg = sample_config();
        cfg.validate().unwrap();
        let mut w = ByteWriter::new();
        cfg.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = FederationConfig::decode_from(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = sample_config();
        cfg.owners = 1;
        assert!(matches!(
            cfg.validate(),
            Err(ProtocolError::InvalidConfig(_))
        ));

        let mut cfg = sample_config();
        cfg.owners = MAX_OWNERS + 1;
        assert!(cfg.validate().is_err());

        let mut cfg = sample_config();
        cfg.n_cols = 1;
        assert!(cfg.validate().is_err());

        let mut cfg = sample_config();
        cfg.kmeans_k = 0;
        assert!(cfg.validate().is_err());

        // Robust z-score has no chainable partial fit.
        let mut cfg = sample_config();
        cfg.normalization = Normalization::RobustZScore;
        assert!(matches!(
            cfg.validate(),
            Err(ProtocolError::InvalidConfig(_))
        ));
    }

    #[test]
    fn validate_bounds_size_fields_before_allocating() {
        // An absurd n_cols must be rejected up front — not passed to
        // begin_partial_fit, where it would drive a multi-TB allocation.
        let mut cfg = sample_config();
        cfg.n_cols = 1 << 40;
        assert!(matches!(
            cfg.validate(),
            Err(ProtocolError::InvalidConfig(_))
        ));

        let mut cfg = sample_config();
        cfg.n_cols = MAX_COLS + 1;
        assert!(cfg.validate().is_err());

        let mut cfg = sample_config();
        cfg.rbt.solver_grid = MAX_SOLVER_GRID + 1;
        assert!(cfg.validate().is_err());

        let mut cfg = sample_config();
        cfg.kmeans_k = MAX_KMEANS_K + 1;
        assert!(cfg.validate().is_err());

        let mut cfg = sample_config();
        cfg.kmeans_max_iters = MAX_KMEANS_MAX_ITERS + 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn decode_rejects_implausible_size_fields() {
        // Every size-like field must be bounded at decode time, so a
        // ~100-byte unauthenticated frame cannot smuggle in an
        // allocation-driving count.
        type Poison = fn(&mut FederationConfig);
        let cases: [(Poison, &str); 4] = [
            (|c| c.n_cols = 1 << 40, "n_cols"),
            (|c| c.rbt.solver_grid = MAX_SOLVER_GRID + 1, "solver_grid"),
            (|c| c.kmeans_k = MAX_KMEANS_K + 1, "kmeans_k"),
            (
                |c| c.kmeans_max_iters = MAX_KMEANS_MAX_ITERS + 1,
                "kmeans_max_iters",
            ),
        ];
        for (poison, what) in cases {
            let mut cfg = sample_config();
            poison(&mut cfg);
            let mut w = ByteWriter::new();
            cfg.encode_into(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert!(
                FederationConfig::decode_from(&mut r).is_err(),
                "oversized {what} decoded"
            );
        }
    }

    #[test]
    fn owner_seeds_are_distinct() {
        let cfg = sample_config();
        let seeds: Vec<u64> = (0..cfg.owners).map(|o| cfg.owner_seed(o)).collect();
        for (a, sa) in seeds.iter().enumerate() {
            assert_ne!(*sa, cfg.seed);
            for (b, sb) in seeds.iter().enumerate() {
                if a != b {
                    assert_ne!(sa, sb);
                }
            }
        }
    }

    #[test]
    fn decode_rejects_unknown_tags() {
        let cfg = sample_config();
        let mut w = ByteWriter::new();
        cfg.encode_into(&mut w);
        let mut bytes = w.into_bytes();
        // The key-policy byte sits 17 bytes before the end (policy + seed
        // + k + max_iters). Stomp it with an unknown tag.
        let n = bytes.len();
        bytes[n - 25] = 9;
        let mut r = ByteReader::new(&bytes);
        assert!(FederationConfig::decode_from(&mut r).is_err());
    }
}
