//! Deterministic in-process federation driver with fault injection.
//!
//! [`InProcessFederation`] wires N owners, the coordinator, and the
//! receiver to a single FIFO delivery queue and runs the protocol to
//! completion. Every delivery round-trips through the checksummed message
//! codec — exactly what a transport would do — so the harness exercises
//! the same decode path as the wire.
//!
//! [`FaultPlan`] injects transport faults *deterministically* (seeded
//! per-delivery draws): drops, duplicates, adjacent reorders, and byte
//! corruption. The protocol's contract under faults is binary: either the
//! run completes with the **exact** joint dataset a clean run produces, or
//! it fails with a typed [`ProtocolError`] — never a silently divergent
//! release. The chaos battery in `tests/` asserts precisely that.

use crate::config::FederationConfig;
use crate::coordinator::Coordinator;
use crate::messages::{Message, Outbound, Party};
use crate::owner::Owner;
use crate::receiver::{JointResult, Receiver};
use crate::{ProtocolError, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rbt_linalg::Matrix;
use std::collections::VecDeque;

/// Safety cap on total deliveries: generous for any legal session
/// (the densest round, a shared key fit, is O(pairs × owners)).
const MAX_DELIVERIES: usize = 1_000_000;

/// A deterministic transport-fault schedule.
///
/// Rates are per-mille probabilities applied independently to every
/// delivery, drawn from a seeded RNG — the same plan over the same
/// federation always injects the same faults.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed of the fault-decision RNG.
    pub seed: u64,
    /// ‰ chance a delivery is dropped.
    pub drop_per_mille: u16,
    /// ‰ chance a delivery is delivered twice.
    pub duplicate_per_mille: u16,
    /// ‰ chance a delivery swaps places with the next queued one.
    pub reorder_per_mille: u16,
    /// ‰ chance one byte of the encoded delivery is flipped.
    pub corrupt_per_mille: u16,
}

impl FaultPlan {
    /// A fault-free plan (deliveries still round-trip the codec).
    pub fn clean() -> Self {
        FaultPlan {
            seed: 0,
            drop_per_mille: 0,
            duplicate_per_mille: 0,
            reorder_per_mille: 0,
            corrupt_per_mille: 0,
        }
    }

    /// A plan injecting every fault kind at `per_mille` each.
    pub fn uniform(seed: u64, per_mille: u16) -> Self {
        FaultPlan {
            seed,
            drop_per_mille: per_mille,
            duplicate_per_mille: per_mille,
            reorder_per_mille: per_mille,
            corrupt_per_mille: per_mille,
        }
    }

    fn is_clean(&self) -> bool {
        self.drop_per_mille == 0
            && self.duplicate_per_mille == 0
            && self.reorder_per_mille == 0
            && self.corrupt_per_mille == 0
    }
}

/// Outcome of a completed (fault-surviving) federation run.
#[derive(Debug)]
pub struct FederationRun {
    /// The receiver's joint clustering result.
    pub result: JointResult,
    /// Total messages delivered.
    pub delivered: usize,
    /// Faults actually injected (a fault may hit a delivery that no longer
    /// matters, e.g. a duplicate of the final message).
    pub faults_injected: usize,
    /// The owners, post-release (keys available via [`Owner::key`]).
    pub owners: Vec<Owner>,
    /// The coordinator, post-completion.
    pub coordinator: Coordinator,
}

/// Drives a full federated release in memory.
#[derive(Debug)]
pub struct InProcessFederation {
    coordinator: Coordinator,
    owners: Vec<Owner>,
    receiver: Receiver,
    plan: FaultPlan,
}

impl InProcessFederation {
    /// Builds a federation of `partitions.len()` owners over `config`.
    ///
    /// Partition order is announced (pooled concatenation) order.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidConfig`] if the partition count disagrees
    /// with `config.owners`, plus any party-construction error.
    pub fn new(config: FederationConfig, partitions: Vec<Matrix>) -> Result<Self> {
        config.validate()?;
        if partitions.len() != config.owners as usize {
            return Err(ProtocolError::InvalidConfig(format!(
                "{} partitions for {} announced owners",
                partitions.len(),
                config.owners
            )));
        }
        let owners = partitions
            .into_iter()
            .enumerate()
            .map(|(i, m)| Owner::new(i as u16, config.session, m))
            .collect::<Result<Vec<_>>>()?;
        let receiver = Receiver::new(config.session);
        let coordinator = Coordinator::new(config)?;
        Ok(InProcessFederation {
            coordinator,
            owners,
            receiver,
            plan: FaultPlan::clean(),
        })
    }

    /// Replaces the fault plan (default: clean).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Runs the protocol to completion.
    ///
    /// # Errors
    ///
    /// Any typed [`ProtocolError`] a party raises (fault injection makes
    /// these expected, not exceptional), or [`ProtocolError::Stalled`] if
    /// the queue drains without the receiver completing (e.g. after a
    /// dropped delivery).
    pub fn run(mut self) -> Result<FederationRun> {
        let mut rng = StdRng::seed_from_u64(self.plan.seed);
        let clean = self.plan.is_clean();
        let mut queue: VecDeque<Outbound> = self.coordinator.start()?.into();
        let mut delivered = 0usize;
        let mut faults = 0usize;
        while let Some(out) = queue.pop_front() {
            if delivered >= MAX_DELIVERIES {
                return Err(ProtocolError::Stalled {
                    delivered,
                    state: self.coordinator.state_name().into(),
                });
            }
            let mut copies = 1usize;
            let mut corrupt = false;
            if !clean {
                if roll(&mut rng, self.plan.drop_per_mille) {
                    faults += 1;
                    continue;
                }
                if roll(&mut rng, self.plan.duplicate_per_mille) {
                    faults += 1;
                    copies = 2;
                }
                if roll(&mut rng, self.plan.reorder_per_mille) {
                    if let Some(next) = queue.pop_front() {
                        faults += 1;
                        queue.push_front(out.clone());
                        queue.push_front(next);
                        continue;
                    }
                }
                corrupt = roll(&mut rng, self.plan.corrupt_per_mille);
            }
            for _ in 0..copies {
                // Every delivery takes the transport path: encode, maybe
                // corrupt, decode (checksummed), dispatch.
                let mut bytes = out.msg.encode();
                if corrupt {
                    faults += 1;
                    let pos = rng.random_range(0..bytes.len());
                    let mask = rng.random_range(1..=255u64) as u8;
                    bytes[pos] ^= mask;
                }
                let msg = Message::decode(&bytes)?;
                delivered += 1;
                let outs = match out.to {
                    Party::Coordinator => self.coordinator.handle(&msg)?,
                    Party::Receiver => self.receiver.handle(msg)?,
                    Party::Owner(o) => {
                        let idx = o as usize;
                        if idx >= self.owners.len() {
                            return Err(ProtocolError::OwnerOutOfRange {
                                owner: o,
                                owners: self.owners.len() as u16,
                            });
                        }
                        self.owners[idx].handle(&msg)?
                    }
                };
                queue.extend(outs);
            }
        }
        if !self.coordinator.is_finished() {
            return Err(ProtocolError::Stalled {
                delivered,
                state: self.coordinator.state_name().into(),
            });
        }
        let result = self
            .receiver
            .result()
            .cloned()
            .ok_or_else(|| ProtocolError::Stalled {
                delivered,
                state: "receiver incomplete".into(),
            })?;
        Ok(FederationRun {
            result,
            delivered,
            faults_injected: faults,
            owners: self.owners,
            coordinator: self.coordinator,
        })
    }
}

fn roll(rng: &mut StdRng, per_mille: u16) -> bool {
    if per_mille == 0 {
        return false;
    }
    rng.random_range(0..1000u64) < u64::from(per_mille)
}
