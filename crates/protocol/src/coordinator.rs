//! The session coordinator: drives the round schedule.
//!
//! The coordinator owns the announced configuration and the session RNG.
//! It never sees a raw row — it only relays accumulator state between
//! owners and, under [`KeyPolicy::Shared`], finishes each merged pair
//! profile to solve the security range and draw the rotation angle.
//!
//! ## Determinism
//!
//! The RNG consumption order replicates the pooled
//! [`rbt_core::Pipeline`] exactly: the pairing draw first, then one angle
//! draw per pair, all from `StdRng::seed_from_u64(config.seed)`. Combined
//! with the bit-exact stat chains, a shared-key session therefore produces
//! the **same key bits** as the pooled single-owner run.

use crate::config::{FederationConfig, KeyPolicy};
use crate::messages::{JointSummary, Message, Outbound, Party};
use crate::{ProtocolError, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rbt_core::security::{max_achievable, security_range};
use rbt_core::{PairMoments, PairwiseSecurityThreshold, RotationStep, TransformationKey};
use rbt_data::PartialFit;
use rbt_linalg::codec::{ByteReader, ByteWriter};

/// Phase of the coordinator's state machine.
#[derive(Debug)]
enum State {
    /// Constructed, [`Coordinator::start`] not yet called.
    Idle,
    /// Announce sent; collecting `Join`s.
    AwaitJoins { joined: Vec<bool>, rows: Vec<u64> },
    /// Normalization chain in flight; expecting `NormChainAck {pass, turn}`.
    NormChain { pass: u8, turn: u16 },
    /// Shared key fit in flight; expecting `PairChainAck` for
    /// `(pair, pass, turn)`.
    KeyFit {
        pairs: Vec<(usize, usize)>,
        thresholds: Vec<PairwiseSecurityThreshold>,
        steps: Vec<RotationStep>,
        pair: usize,
        pass: u8,
        turn: u16,
    },
    /// Fit complete; waiting for the receiver's `JointDataset`.
    AwaitJoint,
    /// Received the joint summary; terminal.
    Finished,
}

impl State {
    fn name(&self) -> &'static str {
        match self {
            State::Idle => "Idle",
            State::AwaitJoins { .. } => "AwaitJoins",
            State::NormChain { .. } => "NormChain",
            State::KeyFit { .. } => "KeyFit",
            State::AwaitJoint => "AwaitJoint",
            State::Finished => "Finished",
        }
    }
}

/// The coordinator party.
#[derive(Debug)]
pub struct Coordinator {
    cfg: FederationConfig,
    rng: StdRng,
    state: State,
    key: Option<TransformationKey>,
    summary: Option<JointSummary>,
}

impl Coordinator {
    /// Creates a coordinator for `cfg` (validated).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidConfig`] if the configuration is rejected by
    /// [`FederationConfig::validate`].
    pub fn new(cfg: FederationConfig) -> Result<Self> {
        cfg.validate()?;
        let rng = StdRng::seed_from_u64(cfg.seed);
        Ok(Coordinator {
            cfg,
            rng,
            state: State::Idle,
            key: None,
            summary: None,
        })
    }

    /// The announced configuration.
    pub fn config(&self) -> &FederationConfig {
        &self.cfg
    }

    /// The coordinator's current phase, for diagnostics.
    pub fn state_name(&self) -> &'static str {
        self.state.name()
    }

    /// Whether the receiver has reported the joint clustering.
    pub fn is_finished(&self) -> bool {
        matches!(self.state, State::Finished)
    }

    /// The jointly fitted key, once the shared fit completes (`None` under
    /// [`KeyPolicy::PerOwner`]).
    pub fn key(&self) -> Option<&TransformationKey> {
        self.key.as_ref()
    }

    /// The receiver's joint clustering summary, once reported.
    pub fn summary(&self) -> Option<&JointSummary> {
        self.summary.as_ref()
    }

    /// Opens the session: emits `Announce` to every owner and the receiver.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnexpectedMessage`] if the session was already
    /// started.
    pub fn start(&mut self) -> Result<Vec<Outbound>> {
        if !matches!(self.state, State::Idle) {
            return Err(self.unexpected("start"));
        }
        let owners = self.cfg.owners;
        self.state = State::AwaitJoins {
            joined: vec![false; owners as usize],
            rows: vec![0; owners as usize],
        };
        let mut out = Vec::with_capacity(owners as usize + 1);
        for o in 0..owners {
            out.push(Outbound::new(
                Party::Owner(o),
                Message::Announce {
                    config: self.cfg.clone(),
                },
            ));
        }
        out.push(Outbound::new(
            Party::Receiver,
            Message::Announce {
                config: self.cfg.clone(),
            },
        ));
        Ok(out)
    }

    fn unexpected(&self, message: &str) -> ProtocolError {
        ProtocolError::UnexpectedMessage {
            party: "coordinator".into(),
            state: self.state.name().into(),
            message: message.into(),
        }
    }

    /// Consumes one message, advancing the state machine.
    ///
    /// # Errors
    ///
    /// Typed [`ProtocolError`]s for session/order/shape violations or an
    /// unsatisfiable security range; after an error the session is dead.
    pub fn handle(&mut self, msg: &Message) -> Result<Vec<Outbound>> {
        if msg.session() != self.cfg.session {
            return Err(ProtocolError::SessionMismatch {
                expected: self.cfg.session,
                found: msg.session(),
            });
        }
        match msg {
            Message::Join {
                owner,
                rows: n_rows,
                ..
            } => {
                let State::AwaitJoins { joined, rows } = &mut self.state else {
                    return Err(self.unexpected(msg.kind()));
                };
                let idx = *owner as usize;
                if idx >= joined.len() {
                    return Err(ProtocolError::OwnerOutOfRange {
                        owner: *owner,
                        owners: self.cfg.owners,
                    });
                }
                if joined[idx] {
                    return Err(ProtocolError::DuplicateMessage {
                        party: "coordinator".into(),
                        message: format!("Join from owner {owner}"),
                    });
                }
                joined[idx] = true;
                rows[idx] = *n_rows;
                if joined.iter().all(|&j| j) {
                    // Every owner present: open the normalization chain at
                    // owner 0, pass 1.
                    let acc = self
                        .cfg
                        .normalization
                        .begin_partial_fit(self.cfg.n_cols)
                        .map_err(ProtocolError::Data)?;
                    let mut w = ByteWriter::new();
                    acc.encode_into(&mut w);
                    self.state = State::NormChain { pass: 1, turn: 0 };
                    return Ok(vec![Outbound::new(
                        Party::Owner(0),
                        Message::NormChain {
                            session: self.cfg.session,
                            pass: 1,
                            turn: 0,
                            acc: w.into_bytes(),
                        },
                    )]);
                }
                Ok(Vec::new())
            }
            Message::NormChainAck {
                pass: ack_pass,
                turn: ack_turn,
                acc,
                ..
            } => {
                let State::NormChain { pass, turn } = self.state else {
                    return Err(self.unexpected(msg.kind()));
                };
                if *ack_pass != pass || *ack_turn != turn {
                    return Err(self.unexpected(&format!(
                        "NormChainAck(pass {ack_pass}, turn {ack_turn}) while expecting \
                         (pass {pass}, turn {turn})"
                    )));
                }
                if turn + 1 < self.cfg.owners {
                    // Relay the accumulator to the next owner unchanged.
                    self.state = State::NormChain {
                        pass,
                        turn: turn + 1,
                    };
                    return Ok(vec![Outbound::new(
                        Party::Owner(turn + 1),
                        Message::NormChain {
                            session: self.cfg.session,
                            pass,
                            turn: turn + 1,
                            acc: acc.clone(),
                        },
                    )]);
                }
                // Chain pass complete: inspect the accumulator.
                let mut r = ByteReader::new(acc);
                let mut fit = PartialFit::decode_from(&mut r)?;
                r.expect_end()?;
                if pass == 1 && fit.needs_second_pass() {
                    fit.begin_second_pass().map_err(ProtocolError::Data)?;
                    let mut w = ByteWriter::new();
                    fit.encode_into(&mut w);
                    self.state = State::NormChain { pass: 2, turn: 0 };
                    return Ok(vec![Outbound::new(
                        Party::Owner(0),
                        Message::NormChain {
                            session: self.cfg.session,
                            pass: 2,
                            turn: 0,
                            acc: w.into_bytes(),
                        },
                    )]);
                }
                let fitted = fit.finish().map_err(ProtocolError::Data)?;
                let mut w = ByteWriter::new();
                fitted.encode_into(&mut w);
                let normalizer = w.into_bytes();
                let mut out: Vec<Outbound> = (0..self.cfg.owners)
                    .map(|o| {
                        Outbound::new(
                            Party::Owner(o),
                            Message::SharedNormalization {
                                session: self.cfg.session,
                                normalizer: normalizer.clone(),
                            },
                        )
                    })
                    .collect();
                match self.cfg.key_policy {
                    KeyPolicy::Shared => {
                        // Pooled-identical RNG order: the pairing draw
                        // happens here, right after normalization.
                        let pairs = self
                            .cfg
                            .rbt
                            .pairing
                            .pairs(self.cfg.n_cols, &mut self.rng)
                            .map_err(ProtocolError::Method)?;
                        let thresholds = self
                            .cfg
                            .rbt
                            .thresholds_for(pairs.len())
                            .map_err(ProtocolError::Method)?;
                        let (i, j) = pairs[0];
                        out.push(Outbound::new(
                            Party::Owner(0),
                            Message::PairChain {
                                session: self.cfg.session,
                                pair: 0,
                                i: i as u16,
                                j: j as u16,
                                pass: 1,
                                turn: 0,
                                acc: encode_moments(&PairMoments::new()),
                            },
                        ));
                        self.state = State::KeyFit {
                            pairs,
                            thresholds,
                            steps: Vec::new(),
                            pair: 0,
                            pass: 1,
                            turn: 0,
                        };
                    }
                    KeyPolicy::PerOwner => {
                        // No joint fit: owners key their own partitions.
                        for o in 0..self.cfg.owners {
                            out.push(Outbound::new(
                                Party::Owner(o),
                                Message::FitComplete {
                                    session: self.cfg.session,
                                    pairs: 0,
                                },
                            ));
                        }
                        self.state = State::AwaitJoint;
                    }
                }
                Ok(out)
            }
            Message::PairChainAck {
                pair: ack_pair,
                pass: ack_pass,
                turn: ack_turn,
                acc,
                ..
            } => {
                let State::KeyFit {
                    pairs,
                    thresholds,
                    steps,
                    pair,
                    pass,
                    turn,
                } = &mut self.state
                else {
                    return Err(self.unexpected(msg.kind()));
                };
                if *ack_pair as usize != *pair || *ack_pass != *pass || *ack_turn != *turn {
                    let expected = (*pair, *pass, *turn);
                    return Err(self.unexpected(&format!(
                        "PairChainAck(pair {ack_pair}, pass {ack_pass}, turn {ack_turn}) \
                         while expecting {expected:?}"
                    )));
                }
                let session = self.cfg.session;
                let owners = self.cfg.owners;
                let (i, j) = pairs[*pair];
                if *turn + 1 < owners {
                    *turn += 1;
                    return Ok(vec![Outbound::new(
                        Party::Owner(*turn),
                        Message::PairChain {
                            session,
                            pair: *ack_pair,
                            i: i as u16,
                            j: j as u16,
                            pass: *pass,
                            turn: *turn,
                            acc: acc.clone(),
                        },
                    )]);
                }
                let mut r = ByteReader::new(acc);
                let mut moments = PairMoments::decode_from(&mut r)?;
                r.expect_end()?;
                if *pass == 1 {
                    moments.begin_second_pass().map_err(ProtocolError::Method)?;
                    *pass = 2;
                    *turn = 0;
                    return Ok(vec![Outbound::new(
                        Party::Owner(0),
                        Message::PairChain {
                            session,
                            pair: *ack_pair,
                            i: i as u16,
                            j: j as u16,
                            pass: 2,
                            turn: 0,
                            acc: encode_moments(&moments),
                        },
                    )]);
                }
                // Both passes folded through every owner: the merged profile
                // is bit-identical to the pooled one. Solve and draw exactly
                // as the pooled transformer does.
                let profile = moments
                    .finish(self.cfg.rbt.variance_mode)
                    .map_err(ProtocolError::Method)?;
                let pst = thresholds[*pair];
                let range = security_range(&profile, &pst, self.cfg.rbt.solver_grid)
                    .map_err(ProtocolError::Method)?;
                if range.is_empty() {
                    let (max_var1, max_var2) = max_achievable(&profile, self.cfg.rbt.solver_grid);
                    return Err(ProtocolError::Method(rbt_core::Error::EmptySecurityRange {
                        i,
                        j,
                        rho1: pst.rho1,
                        rho2: pst.rho2,
                        max_var1,
                        max_var2,
                    }));
                }
                let theta = range.sample(&mut self.rng).map_err(ProtocolError::Method)?;
                let step = RotationStep {
                    i,
                    j,
                    theta_degrees: theta,
                    achieved_var1: profile.var_diff_first(theta),
                    achieved_var2: profile.var_diff_second(theta),
                };
                let mut out: Vec<Outbound> = (0..owners)
                    .map(|o| {
                        Outbound::new(
                            Party::Owner(o),
                            Message::ApplyRotation {
                                session,
                                pair: *ack_pair,
                                i: i as u16,
                                j: j as u16,
                                theta_degrees: step.theta_degrees,
                                achieved_var1: step.achieved_var1,
                                achieved_var2: step.achieved_var2,
                            },
                        )
                    })
                    .collect();
                steps.push(step);
                if *pair + 1 < pairs.len() {
                    *pair += 1;
                    *pass = 1;
                    *turn = 0;
                    let (ni, nj) = pairs[*pair];
                    out.push(Outbound::new(
                        Party::Owner(0),
                        Message::PairChain {
                            session,
                            pair: *pair as u16,
                            i: ni as u16,
                            j: nj as u16,
                            pass: 1,
                            turn: 0,
                            acc: encode_moments(&PairMoments::new()),
                        },
                    ));
                    return Ok(out);
                }
                let n_pairs = pairs.len() as u16;
                let key = TransformationKey::new(std::mem::take(steps), self.cfg.n_cols)
                    .map_err(ProtocolError::Method)?;
                self.key = Some(key);
                for o in 0..owners {
                    out.push(Outbound::new(
                        Party::Owner(o),
                        Message::FitComplete {
                            session,
                            pairs: n_pairs,
                        },
                    ));
                }
                self.state = State::AwaitJoint;
                Ok(out)
            }
            Message::JointDataset { summary, .. } => {
                if !matches!(self.state, State::AwaitJoint) {
                    return Err(self.unexpected(msg.kind()));
                }
                self.summary = Some(summary.clone());
                self.state = State::Finished;
                Ok(Vec::new())
            }
            other => Err(self.unexpected(other.kind())),
        }
    }
}

fn encode_moments(m: &PairMoments) -> Vec<u8> {
    let mut w = ByteWriter::new();
    m.encode_into(&mut w);
    w.into_bytes()
}
