//! The data-owner party: folds statistics, applies rotations, releases.
//!
//! An owner holds one horizontal partition (a block of rows over the
//! shared attributes). It never sends a raw row anywhere: its outbound
//! traffic is accumulator state (normalization and pair-moment folds) and,
//! at the very end, its **transformed** block.
//!
//! The owner is deliberately paranoid: each chain round must arrive for
//! the exact pass/turn/pair it expects, a rotation may only apply to the
//! pair currently being fit, and the final `FitComplete` must account for
//! every rotation the owner applied — otherwise releasing would ship
//! under-rotated (weakly protected, pooled-divergent) data, so the owner
//! errors out instead.

use crate::config::{FederationConfig, KeyPolicy};
use crate::messages::{Message, Outbound, Party};
use crate::{ProtocolError, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rbt_core::{PairMoments, RbtTransformer, RotationStep, TransformationKey};
use rbt_data::{FittedNormalizer, PartialFit};
use rbt_linalg::codec::{ByteReader, ByteWriter};
use rbt_linalg::{Matrix, Rotation2};

/// Phase of the owner's state machine.
#[derive(Debug)]
enum State {
    /// Waiting for the coordinator's `Announce`.
    AwaitAnnounce,
    /// Joined; participating in the normalization chain over **raw** rows.
    /// `folded_pass` is the highest pass already folded (0 initially).
    Joined {
        cfg: FederationConfig,
        folded_pass: u8,
    },
    /// Holds the normalized (and progressively rotated) local block.
    /// Under a shared key fit: `applied` rotations done so far,
    /// `folded_pass` the highest pass folded for the pair currently in
    /// flight, `steps` the rotation steps recorded so far.
    Fitting {
        cfg: FederationConfig,
        local: Matrix,
        applied: u16,
        folded_pass: u8,
        steps: Vec<RotationStep>,
    },
    /// Block released; terminal.
    Released,
}

impl State {
    fn name(&self) -> &'static str {
        match self {
            State::AwaitAnnounce => "AwaitAnnounce",
            State::Joined { .. } => "Joined",
            State::Fitting { .. } => "Fitting",
            State::Released => "Released",
        }
    }
}

/// The owner party.
#[derive(Debug)]
pub struct Owner {
    id: u16,
    session: u64,
    raw: Matrix,
    state: State,
    key: Option<TransformationKey>,
}

impl Owner {
    /// Creates owner `id` of session `session` holding partition `raw`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::ShapeMismatch`] for an empty partition.
    pub fn new(id: u16, session: u64, raw: Matrix) -> Result<Self> {
        if raw.rows() == 0 || raw.cols() == 0 {
            return Err(ProtocolError::ShapeMismatch(format!(
                "owner {id} has an empty partition ({}×{})",
                raw.rows(),
                raw.cols()
            )));
        }
        Ok(Owner {
            id,
            session,
            raw,
            state: State::AwaitAnnounce,
            key: None,
        })
    }

    /// This owner's announced index.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// The owner's current phase, for diagnostics.
    pub fn state_name(&self) -> &'static str {
        self.state.name()
    }

    /// Whether the owner has released its block.
    pub fn is_released(&self) -> bool {
        matches!(self.state, State::Released)
    }

    /// The owner's transformation key, once fitted (shared or private).
    pub fn key(&self) -> Option<&TransformationKey> {
        self.key.as_ref()
    }

    fn unexpected(&self, message: &str) -> ProtocolError {
        ProtocolError::UnexpectedMessage {
            party: format!("owner {}", self.id),
            state: self.state.name().into(),
            message: message.into(),
        }
    }

    fn duplicate(&self, message: &str) -> ProtocolError {
        ProtocolError::DuplicateMessage {
            party: format!("owner {}", self.id),
            message: message.into(),
        }
    }

    /// Consumes one message, advancing the state machine.
    ///
    /// # Errors
    ///
    /// Typed [`ProtocolError`]s; after an error the owner refuses further
    /// progress rather than risk releasing divergent data.
    pub fn handle(&mut self, msg: &Message) -> Result<Vec<Outbound>> {
        if msg.session() != self.session {
            return Err(ProtocolError::SessionMismatch {
                expected: self.session,
                found: msg.session(),
            });
        }
        match msg {
            Message::Announce { config } => {
                if !matches!(self.state, State::AwaitAnnounce) {
                    return Err(self.duplicate(msg.kind()));
                }
                config.validate()?;
                if self.id >= config.owners {
                    return Err(ProtocolError::OwnerOutOfRange {
                        owner: self.id,
                        owners: config.owners,
                    });
                }
                if self.raw.cols() != config.n_cols {
                    return Err(ProtocolError::ShapeMismatch(format!(
                        "owner {} holds {} attributes, session announced {}",
                        self.id,
                        self.raw.cols(),
                        config.n_cols
                    )));
                }
                let rows = self.raw.rows() as u64;
                self.state = State::Joined {
                    cfg: config.clone(),
                    folded_pass: 0,
                };
                Ok(vec![Outbound::new(
                    Party::Coordinator,
                    Message::Join {
                        session: self.session,
                        owner: self.id,
                        rows,
                    },
                )])
            }
            Message::NormChain {
                pass, turn, acc, ..
            } => {
                let State::Joined { folded_pass, .. } = &mut self.state else {
                    return Err(self.unexpected(msg.kind()));
                };
                let folded = *folded_pass;
                if *turn != self.id {
                    return Err(self.unexpected(&format!(
                        "NormChain for owner {turn} delivered to owner {}",
                        self.id
                    )));
                }
                if *pass == folded {
                    return Err(self.duplicate(&format!("NormChain pass {pass}")));
                }
                if *pass != folded + 1 || *pass > 2 {
                    return Err(self.unexpected(&format!(
                        "NormChain pass {pass} after folding pass {folded}"
                    )));
                }
                let mut r = ByteReader::new(acc);
                let mut fit = PartialFit::decode_from(&mut r)?;
                r.expect_end()?;
                fit.fold(&self.raw).map_err(ProtocolError::Data)?;
                let mut w = ByteWriter::new();
                fit.encode_into(&mut w);
                let pass = *pass;
                if let State::Joined { folded_pass, .. } = &mut self.state {
                    *folded_pass = pass;
                }
                Ok(vec![Outbound::new(
                    Party::Coordinator,
                    Message::NormChainAck {
                        session: self.session,
                        pass,
                        turn: self.id,
                        acc: w.into_bytes(),
                    },
                )])
            }
            Message::SharedNormalization { normalizer, .. } => {
                let State::Joined { cfg, .. } = &self.state else {
                    return Err(self.unexpected(msg.kind()));
                };
                let cfg = cfg.clone();
                let mut r = ByteReader::new(normalizer);
                let fitted = FittedNormalizer::decode_from(&mut r)?;
                r.expect_end()?;
                if fitted.n_cols() != cfg.n_cols {
                    return Err(ProtocolError::ShapeMismatch(format!(
                        "shared normalizer covers {} attributes, session announced {}",
                        fitted.n_cols(),
                        cfg.n_cols
                    )));
                }
                let local = fitted.transform(&self.raw).map_err(ProtocolError::Data)?;
                self.state = State::Fitting {
                    cfg,
                    local,
                    applied: 0,
                    folded_pass: 0,
                    steps: Vec::new(),
                };
                Ok(Vec::new())
            }
            Message::PairChain {
                pair,
                i,
                j,
                pass,
                turn,
                acc,
                ..
            } => {
                let State::Fitting {
                    cfg,
                    local,
                    applied,
                    folded_pass,
                    ..
                } = &mut self.state
                else {
                    return Err(self.unexpected(msg.kind()));
                };
                if cfg.key_policy != KeyPolicy::Shared {
                    let e = self.unexpected("PairChain under a per-owner key policy");
                    return Err(e);
                }
                if *turn != self.id {
                    let e = self.unexpected(&format!(
                        "PairChain for owner {turn} delivered to owner {}",
                        self.id
                    ));
                    return Err(e);
                }
                if *pair < *applied {
                    let e = self.duplicate(&format!("PairChain for pair {pair}"));
                    return Err(e);
                }
                if *pair > *applied {
                    let (applied, pair) = (*applied, *pair);
                    let e = self.unexpected(&format!(
                        "PairChain for pair {pair} before pair {applied} was rotated"
                    ));
                    return Err(e);
                }
                if *pass == *folded_pass {
                    let e = self.duplicate(&format!("PairChain pair {pair} pass {pass}"));
                    return Err(e);
                }
                if *pass != *folded_pass + 1 || *pass > 2 {
                    let (folded, pass) = (*folded_pass, *pass);
                    let e = self.unexpected(&format!(
                        "PairChain pass {pass} after folding pass {folded}"
                    ));
                    return Err(e);
                }
                let (ci, cj) = (*i as usize, *j as usize);
                if ci >= cfg.n_cols || cj >= cfg.n_cols {
                    return Err(ProtocolError::ShapeMismatch(format!(
                        "pair ({ci}, {cj}) out of range for {} attributes",
                        cfg.n_cols
                    )));
                }
                let mut r = ByteReader::new(acc);
                let mut moments = PairMoments::decode_from(&mut r)?;
                r.expect_end()?;
                let mut xs = Vec::with_capacity(local.rows());
                let mut ys = Vec::with_capacity(local.rows());
                local.column_into(ci, &mut xs);
                local.column_into(cj, &mut ys);
                moments.fold(&xs, &ys).map_err(ProtocolError::Method)?;
                *folded_pass = *pass;
                let mut w = ByteWriter::new();
                moments.encode_into(&mut w);
                Ok(vec![Outbound::new(
                    Party::Coordinator,
                    Message::PairChainAck {
                        session: self.session,
                        pair: *pair,
                        pass: *pass,
                        turn: self.id,
                        acc: w.into_bytes(),
                    },
                )])
            }
            Message::ApplyRotation {
                pair,
                i,
                j,
                theta_degrees,
                achieved_var1,
                achieved_var2,
                ..
            } => {
                let State::Fitting {
                    cfg,
                    local,
                    applied,
                    folded_pass,
                    steps,
                } = &mut self.state
                else {
                    return Err(self.unexpected(msg.kind()));
                };
                if cfg.key_policy != KeyPolicy::Shared {
                    let e = self.unexpected("ApplyRotation under a per-owner key policy");
                    return Err(e);
                }
                if *pair < *applied {
                    let e = self.duplicate(&format!("ApplyRotation for pair {pair}"));
                    return Err(e);
                }
                if *pair > *applied || *folded_pass != 2 {
                    let (applied, folded) = (*applied, *folded_pass);
                    let e = self.unexpected(&format!(
                        "ApplyRotation for pair {pair} (applied {applied}, folded pass {folded})"
                    ));
                    return Err(e);
                }
                let (ci, cj) = (*i as usize, *j as usize);
                // The same fused sweep the pooled transformer uses — same
                // expression, same bits.
                let (s, c) = Rotation2::from_degrees(*theta_degrees).radians().sin_cos();
                local
                    .rotate_column_pair(ci, cj, c, s)
                    .map_err(|e| ProtocolError::ShapeMismatch(e.to_string()))?;
                steps.push(RotationStep {
                    i: ci,
                    j: cj,
                    theta_degrees: *theta_degrees,
                    achieved_var1: *achieved_var1,
                    achieved_var2: *achieved_var2,
                });
                *applied += 1;
                *folded_pass = 0;
                Ok(Vec::new())
            }
            Message::FitComplete { pairs, .. } => {
                let State::Fitting {
                    cfg,
                    local,
                    applied,
                    folded_pass,
                    steps,
                } = &mut self.state
                else {
                    return Err(self.unexpected(msg.kind()));
                };
                match cfg.key_policy {
                    KeyPolicy::Shared => {
                        // Refuse to release under-rotated data: every
                        // announced rotation must have been applied, and no
                        // pair fold may be dangling.
                        if *applied != *pairs || *folded_pass != 0 {
                            let (applied, folded) = (*applied, *folded_pass);
                            let e = self.unexpected(&format!(
                                "FitComplete after {pairs} pairs, but owner applied {applied} \
                                 (dangling fold pass {folded})"
                            ));
                            return Err(e);
                        }
                        let key = TransformationKey::new(std::mem::take(steps), cfg.n_cols)
                            .map_err(ProtocolError::Method)?;
                        let released = std::mem::replace(local, Matrix::zeros(0, 0));
                        self.key = Some(key);
                        let out = Outbound::new(
                            Party::Receiver,
                            Message::OwnerRelease {
                                session: self.session,
                                owner: self.id,
                                matrix: released,
                            },
                        );
                        self.state = State::Released;
                        Ok(vec![out])
                    }
                    KeyPolicy::PerOwner => {
                        if *pairs != 0 {
                            let e = self.unexpected(&format!(
                                "FitComplete announced {pairs} shared pairs under a per-owner \
                                 key policy"
                            ));
                            return Err(e);
                        }
                        // Fit a private key on this partition alone, seeded
                        // from the announced seed and the owner id.
                        let mut rng = StdRng::seed_from_u64(cfg.owner_seed(self.id));
                        let transformer = RbtTransformer::new(cfg.rbt.clone());
                        let output = transformer
                            .transform(local, &mut rng)
                            .map_err(ProtocolError::Method)?;
                        self.key = Some(output.key);
                        let out = Outbound::new(
                            Party::Receiver,
                            Message::OwnerRelease {
                                session: self.session,
                                owner: self.id,
                                matrix: output.transformed,
                            },
                        );
                        self.state = State::Released;
                        Ok(vec![out])
                    }
                }
            }
            other => Err(self.unexpected(other.kind())),
        }
    }
}
