//! The federated-release battery: golden bit-identity pins against the
//! pooled single-owner baseline, the 2–8 owner chaos harness, hub
//! round-trips, and the per-owner key policy.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rbt_cluster::{KMeans, KMeansInit};
use rbt_core::{PairingStrategy, PairwiseSecurityThreshold, Pipeline, RbtConfig};
use rbt_data::synth::GaussianMixture;
use rbt_data::{Dataset, Normalization};
use rbt_linalg::Matrix;
use rbt_protocol::{
    FaultPlan, FederationConfig, FederationHub, InProcessFederation, KeyPolicy, Message,
    ProtocolError,
};

/// The shared fixture: a well-separated 3-cluster Gaussian mixture —
/// enough rows that every partition of up to 8 owners keeps a healthy
/// block, deterministic by seed.
fn fixture(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let gm = GaussianMixture::well_separated(3, cols, 10.0, 1.2).unwrap();
    gm.sample(rows, &mut rng).matrix
}

/// Splits `m` into `n` contiguous row blocks (sizes deliberately uneven).
fn partition(m: &Matrix, n: usize) -> Vec<Matrix> {
    let rows = m.rows();
    let mut cuts = Vec::with_capacity(n + 1);
    cuts.push(0);
    for i in 1..n {
        // Uneven but deterministic cut points.
        cuts.push(rows * i * i / (n * n) + i);
    }
    cuts.push(rows);
    cuts.windows(2)
        .map(|w| {
            let rows_refs: Vec<&[f64]> = (w[0]..w[1]).map(|r| m.row(r)).collect();
            Matrix::from_rows(&rows_refs).unwrap()
        })
        .collect()
}

fn shared_config(session: u64, n_cols: usize, owners: u16, seed: u64) -> FederationConfig {
    FederationConfig {
        session,
        n_cols,
        owners,
        normalization: Normalization::zscore_paper(),
        rbt: RbtConfig::uniform(PairwiseSecurityThreshold::new(0.2, 0.2).unwrap()),
        key_policy: KeyPolicy::Shared,
        seed,
        kmeans_k: 3,
        kmeans_max_iters: 128,
    }
}

/// The pooled single-owner baseline the federation must reproduce
/// bit-for-bit: `Pipeline` (normalize → RBT) then first-k k-means, all
/// from the same seed.
fn pooled_baseline(pooled: &Matrix, cfg: &FederationConfig) -> (Matrix, Vec<usize>, f64) {
    let dataset = Dataset::from_matrix(pooled.clone());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let out = Pipeline::new(cfg.rbt.clone())
        .with_normalization(cfg.normalization)
        .run(&dataset, &mut rng)
        .unwrap();
    let kmeans = KMeans::new(cfg.kmeans_k)
        .unwrap()
        .with_init(KMeansInit::FirstK)
        .with_max_iters(cfg.kmeans_max_iters);
    let mut krng = StdRng::seed_from_u64(cfg.seed);
    let fit = kmeans.fit(out.released.matrix(), &mut krng).unwrap();
    (out.released.matrix().clone(), fit.labels, fit.inertia)
}

fn assert_bitwise_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: value bits");
    }
}

/// Golden pin: for N ∈ {2, 3} the federated joint release and joint
/// k-means are bit-identical to the pooled baseline.
#[test]
fn federated_release_bitwise_matches_pooled_baseline() {
    let pooled = fixture(211, 5, 7);
    for owners in [2u16, 3] {
        let cfg = shared_config(0x5e55_1000 + u64::from(owners), 5, owners, 4242);
        let (baseline_matrix, baseline_labels, baseline_inertia) = pooled_baseline(&pooled, &cfg);

        let parts = partition(&pooled, owners as usize);
        let run = InProcessFederation::new(cfg, parts).unwrap().run().unwrap();

        assert_bitwise_eq(
            &run.result.matrix,
            &baseline_matrix,
            &format!("{owners}-owner joint release"),
        );
        assert_eq!(run.result.labels, baseline_labels, "{owners}-owner labels");
        assert_eq!(
            run.result.inertia.to_bits(),
            baseline_inertia.to_bits(),
            "{owners}-owner inertia bits"
        );
        assert!(run.coordinator.is_finished());
        // Every owner independently reconstructed the same shared key.
        let coord_key = run.coordinator.key().unwrap().to_string();
        for owner in &run.owners {
            assert_eq!(owner.key().unwrap().to_string(), coord_key);
        }
    }
}

/// The pin holds across pairing strategies, normalizations (including an
/// odd attribute count with a re-distorted column), and owner counts.
#[test]
fn pin_holds_across_configs_and_owner_counts() {
    let cases = [
        // Scaled-down thresholds for the unit-range normalizations, where
        // column variances are far below the z-score scale.
        (
            5usize,
            Normalization::min_max_unit(),
            PairingStrategy::Sequential,
            4u16,
            0.005,
        ),
        (
            4,
            Normalization::zscore_paper(),
            PairingStrategy::RandomShuffle,
            3,
            0.2,
        ),
        (
            6,
            Normalization::DecimalScaling,
            PairingStrategy::Sequential,
            5,
            0.002,
        ),
        (
            4,
            Normalization::zscore_paper(),
            PairingStrategy::Explicit(vec![(2, 0), (1, 3)]),
            2,
            0.2,
        ),
    ];
    for (idx, (cols, norm, pairing, owners, rho)) in cases.into_iter().enumerate() {
        let pooled = fixture(140 + idx * 17, cols, 100 + idx as u64);
        let mut cfg = shared_config(0xcafe + idx as u64, cols, owners, 9000 + idx as u64);
        cfg.normalization = norm;
        cfg.rbt = RbtConfig::uniform(PairwiseSecurityThreshold::new(rho, rho).unwrap())
            .with_pairing(pairing);
        let (baseline_matrix, baseline_labels, _) = pooled_baseline(&pooled, &cfg);
        let parts = partition(&pooled, owners as usize);
        let run = InProcessFederation::new(cfg, parts).unwrap().run().unwrap();
        assert_bitwise_eq(&run.result.matrix, &baseline_matrix, &format!("case {idx}"));
        assert_eq!(run.result.labels, baseline_labels, "case {idx}");
    }
}

/// Owner block boundaries are reported faithfully.
#[test]
fn owner_ranges_cover_the_joint_matrix_in_order() {
    let pooled = fixture(97, 4, 3);
    let cfg = shared_config(0xab, 4, 3, 77);
    let parts = partition(&pooled, 3);
    let sizes: Vec<usize> = parts.iter().map(|p| p.rows()).collect();
    let run = InProcessFederation::new(cfg, parts).unwrap().run().unwrap();
    let mut offset = 0;
    for (range, size) in run.result.owner_ranges.iter().zip(&sizes) {
        assert_eq!(range.start, offset);
        assert_eq!(range.len(), *size);
        offset = range.end;
    }
    assert_eq!(offset, run.result.matrix.rows());
}

/// Under the per-owner key policy the protocol completes, every owner
/// holds a *different* key, and the release diverges from the pooled
/// shared-key baseline (it must — blocks are rotated independently).
#[test]
fn per_owner_policy_yields_distinct_keys() {
    let pooled = fixture(150, 4, 11);
    let mut cfg = shared_config(0xdead, 4, 3, 2025);
    cfg.key_policy = KeyPolicy::PerOwner;
    let parts = partition(&pooled, 3);
    let run = InProcessFederation::new(cfg.clone(), parts)
        .unwrap()
        .run()
        .unwrap();
    assert!(run.coordinator.is_finished());
    assert!(run.coordinator.key().is_none());
    let keys: Vec<String> = run
        .owners
        .iter()
        .map(|o| o.key().unwrap().to_string())
        .collect();
    assert_ne!(keys[0], keys[1]);
    assert_ne!(keys[1], keys[2]);
    let (baseline_matrix, _, _) = pooled_baseline(&pooled, &cfg);
    assert_eq!(run.result.matrix.shape(), baseline_matrix.shape());
    let diverges = run
        .result
        .matrix
        .as_slice()
        .iter()
        .zip(baseline_matrix.as_slice())
        .any(|(a, b)| a.to_bits() != b.to_bits());
    assert!(
        diverges,
        "per-owner keys must not reproduce the shared-key release"
    );
}

/// The chaos battery: 2–8 owners under every fault mix. Every run either
/// fails with a typed protocol error or completes with a joint dataset
/// bit-identical to the clean pooled baseline — never silently divergent.
#[test]
fn chaos_battery_never_yields_divergent_data() {
    let pooled = fixture(180, 4, 19);
    let mut completed = 0usize;
    let mut failed = 0usize;
    for owners in 2u16..=8 {
        let cfg = shared_config(0xc4a0 + u64::from(owners), 4, owners, 31337);
        let (baseline_matrix, baseline_labels, _) = pooled_baseline(&pooled, &cfg);
        for fault_seed in 0..12u64 {
            // ~0.4% per fault kind per delivery: low enough that some runs
            // survive untouched (or with harmless reorders), high enough
            // that most runs hit a fault across a few dozen deliveries.
            let plan = FaultPlan::uniform(fault_seed, 4);
            let parts = partition(&pooled, owners as usize);
            let fed = InProcessFederation::new(cfg.clone(), parts)
                .unwrap()
                .with_fault_plan(plan);
            match fed.run() {
                Ok(run) => {
                    completed += 1;
                    assert_bitwise_eq(
                        &run.result.matrix,
                        &baseline_matrix,
                        &format!("{owners} owners, fault seed {fault_seed}"),
                    );
                    assert_eq!(run.result.labels, baseline_labels);
                }
                Err(e) => {
                    failed += 1;
                    // Every failure is a *typed* protocol error with a
                    // printable description.
                    assert!(matches!(
                        e,
                        ProtocolError::UnexpectedMessage { .. }
                            | ProtocolError::DuplicateMessage { .. }
                            | ProtocolError::Decode(_)
                            | ProtocolError::SessionMismatch { .. }
                            | ProtocolError::Stalled { .. }
                            | ProtocolError::ShapeMismatch(..)
                            | ProtocolError::OwnerOutOfRange { .. }
                            | ProtocolError::Data(_)
                            | ProtocolError::Method(_)
                            | ProtocolError::Cluster(_)
                    ));
                    assert!(!e.to_string().is_empty());
                }
            }
        }
    }
    // The per-delivery fault rate is 2.5% per kind: across 7 × 12 runs
    // both outcomes must occur, or the battery isn't testing anything.
    assert!(completed > 0, "no chaos run completed");
    assert!(failed > 0, "no chaos run hit a fault");
}

/// Dropping a single specific message stalls the protocol with a typed
/// error (no timeout, no wrong data).
#[test]
fn dropped_message_stalls_with_typed_error() {
    let pooled = fixture(90, 4, 23);
    let cfg = shared_config(0xd20b, 4, 2, 55);
    let parts = partition(&pooled, 2);
    // Drop-only plan with a high rate: some delivery will be dropped.
    let plan = FaultPlan {
        seed: 3,
        drop_per_mille: 300,
        duplicate_per_mille: 0,
        reorder_per_mille: 0,
        corrupt_per_mille: 0,
    };
    let err = InProcessFederation::new(cfg, parts)
        .unwrap()
        .with_fault_plan(plan)
        .run()
        .unwrap_err();
    assert!(
        matches!(
            err,
            ProtocolError::Stalled { .. }
                | ProtocolError::UnexpectedMessage { .. }
                | ProtocolError::DuplicateMessage { .. }
        ),
        "unexpected failure mode: {err}"
    );
}

/// The hub drives the same protocol through per-owner mailboxes (the
/// server's request/response shape) and reproduces the pooled baseline.
#[test]
fn hub_mailbox_flow_matches_pooled_baseline() {
    let pooled = fixture(120, 5, 29);
    let cfg = shared_config(0x44b, 5, 3, 808);
    let (baseline_matrix, baseline_labels, _) = pooled_baseline(&pooled, &cfg);
    let parts = partition(&pooled, 3);

    let mut hub = FederationHub::new(4);
    hub.open(cfg.clone()).unwrap();
    let mut owners: Vec<rbt_protocol::Owner> = parts
        .into_iter()
        .enumerate()
        .map(|(i, m)| rbt_protocol::Owner::new(i as u16, cfg.session, m).unwrap())
        .collect();

    // Owner-side client loop: poll the mailbox, feed the owner state
    // machine, send its replies back. Round-robin until the hub reports a
    // result.
    let mut outbox: Vec<Vec<Message>> = vec![Vec::new(); owners.len()];
    for _ in 0..10_000 {
        if hub.result(cfg.session).unwrap().is_some() {
            break;
        }
        for (i, owner) in owners.iter_mut().enumerate() {
            let inbound = std::mem::take(&mut outbox[i]);
            let delivered = hub.exchange(cfg.session, i as u16, inbound).unwrap();
            for msg in delivered {
                // Round-trip the codec, as the wire would.
                let msg = Message::decode(&msg.encode()).unwrap();
                for out in owner.handle(&msg).unwrap() {
                    outbox[i].push(out.msg);
                }
            }
        }
    }
    let summary = hub
        .result(cfg.session)
        .unwrap()
        .expect("hub session incomplete")
        .clone();
    assert_eq!(summary.rows as usize, pooled.rows());
    let joint = hub.joint_result(cfg.session).unwrap().unwrap();
    assert_bitwise_eq(&joint.matrix, &baseline_matrix, "hub joint release");
    assert_eq!(joint.labels, baseline_labels);
    assert!(hub.close(cfg.session));
    assert!(matches!(
        hub.result(cfg.session),
        Err(ProtocolError::UnknownSession(_))
    ));
}

/// Hub session bookkeeping: duplicate ids, capacity, unknown sessions,
/// and poisoning after a protocol violation.
#[test]
fn hub_rejects_duplicates_capacity_and_poisons_failed_sessions() {
    let cfg = shared_config(1, 4, 2, 9);
    let mut hub = FederationHub::new(1);
    hub.open(cfg.clone()).unwrap();
    assert!(matches!(
        hub.open(cfg.clone()),
        Err(ProtocolError::SessionExists(1))
    ));
    let cfg2 = shared_config(2, 4, 2, 9);
    assert!(matches!(
        hub.open(cfg2),
        Err(ProtocolError::InvalidConfig(_))
    ));
    assert!(matches!(
        hub.exchange(3, 0, Vec::new()),
        Err(ProtocolError::UnknownSession(3))
    ));
    assert!(matches!(
        hub.exchange(1, 9, Vec::new()),
        Err(ProtocolError::OwnerOutOfRange { .. })
    ));

    // A message claiming another owner's identity is rejected without
    // poisoning the session: impersonation can't stall honest owners.
    let err = hub
        .exchange(
            1,
            0,
            vec![Message::Join {
                session: 1,
                owner: 1,
                rows: 10,
            }],
        )
        .unwrap_err();
    assert!(matches!(
        err,
        ProtocolError::OwnerMismatch {
            claimed: 1,
            exchanging: 0
        }
    ));
    assert!(hub.exchange(1, 0, Vec::new()).is_ok());

    // An actual protocol violation (duplicate Join) poisons the session...
    let join = Message::Join {
        session: 1,
        owner: 0,
        rows: 10,
    };
    let err = hub.exchange(1, 0, vec![join.clone(), join]).unwrap_err();
    assert!(matches!(err, ProtocolError::DuplicateMessage { .. }));
    // ...and the poison is sticky.
    assert!(hub.exchange(1, 0, Vec::new()).is_err());
    assert!(hub.result(1).is_err());
    assert!(hub.close(1));
}

/// A full hub reclaims slots held by poisoned or idle-expired sessions
/// instead of refusing federation service forever.
#[test]
fn hub_evicts_failed_and_idle_sessions_under_capacity_pressure() {
    // Poisoned session: evicted when a new open needs the slot.
    let mut hub = FederationHub::new(1);
    hub.open(shared_config(1, 4, 2, 9)).unwrap();
    let join = Message::Join {
        session: 1,
        owner: 0,
        rows: 10,
    };
    hub.exchange(1, 0, vec![join.clone(), join]).unwrap_err();
    hub.open(shared_config(2, 4, 2, 9))
        .expect("failed session must not hold the slot");
    assert!(matches!(
        hub.exchange(1, 0, Vec::new()),
        Err(ProtocolError::UnknownSession(1))
    ));
    assert!(hub.exchange(2, 0, Vec::new()).is_ok());

    // Idle session: with a zero TTL every untouched session is expired,
    // so a healthy-but-abandoned open cannot block the next one either.
    let mut hub = FederationHub::new(1).with_idle_ttl(std::time::Duration::ZERO);
    hub.open(shared_config(3, 4, 2, 9)).unwrap();
    hub.open(shared_config(4, 4, 2, 9))
        .expect("idle-expired session must not hold the slot");
    assert!(matches!(
        hub.exchange(3, 0, Vec::new()),
        Err(ProtocolError::UnknownSession(3))
    ));
}

/// Session ids are checked by every party.
#[test]
fn cross_session_messages_are_rejected() {
    let cfg = shared_config(10, 4, 2, 1);
    let mut coordinator = rbt_protocol::Coordinator::new(cfg.clone()).unwrap();
    coordinator.start().unwrap();
    let err = coordinator
        .handle(&Message::Join {
            session: 11,
            owner: 0,
            rows: 5,
        })
        .unwrap_err();
    assert!(matches!(
        err,
        ProtocolError::SessionMismatch {
            expected: 10,
            found: 11
        }
    ));
}
