//! # rbt — privacy-preserving clustering via Rotation-Based Transformation
//!
//! Facade crate for the reproduction of Oliveira & Zaïane,
//! *"Achieving Privacy Preservation When Sharing Data For Clustering"*
//! (2004). It re-exports the member crates under stable module names:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`linalg`] | `rbt-linalg` | matrices, statistics, rotations, distances |
//! | [`data`] | `rbt-data` | datasets, normalization, synthetic generators |
//! | [`cluster`] | `rbt-cluster` | k-means, hierarchical, DBSCAN, validation metrics |
//! | [`core`] | `rbt-core` | the RBT method itself (the paper's contribution) |
//! | [`transform`] | `rbt-transform` | baseline perturbation methods |
//! | [`attack`] | `rbt-attack` | attacks on rotation perturbation |
//! | [`api`] | `rbt-api` | the release API: `PrivacyTransform`, `Release` builder, method registry, `RbtError` |
//! | [`protocol`] | `rbt-protocol` | multi-owner federated release: typed party state machines, federation hub, chaos harness |
//! | [`server`] | `rbt-server` | the multi-tenant release daemon: `RBTW` wire protocol, LRU session registry, blocking client |
//!
//! ## Quickstart
//!
//! The blessed entry point is the [`prelude`]'s typed-state [`Release`]
//! builder:
//!
//! ```
//! use rbt::prelude::*;
//! use rand::SeedableRng;
//!
//! let patients = rbt::data::datasets::arrhythmia_sample();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
//! let fitted = Release::of(&patients)
//!     .with_method(Method::Rbt)
//!     .with_thresholds(PairwiseSecurityThreshold::uniform(0.3).unwrap())
//!     .fit(&mut rng)
//!     .unwrap();
//! assert!(fitted.properties().isometric);
//! ```
//!
//! See `examples/quickstart.rs` for the full Figure 1 workflow: normalize →
//! rotate pairwise under security thresholds → share → cluster, with
//! identical clusters before and after.
//!
//! For streaming workloads — the same persisted secrets applied to batch
//! after batch of arriving records — see [`ReleaseSession`] and
//! `examples/streaming_release.rs`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use rbt_api as api;
pub use rbt_attack as attack;
pub use rbt_cluster as cluster;
pub use rbt_core as core;
pub use rbt_data as data;
pub use rbt_linalg as linalg;
pub use rbt_protocol as protocol;
pub use rbt_server as server;
pub use rbt_transform as transform;

// Most-used types at the top level for ergonomic imports.
pub use rbt_api::{Method, RbtError, Release};
pub use rbt_core::{
    DriftBounds, PairwiseSecurityThreshold, RbtConfig, RbtTransformer, ReleaseSession, SessionBatch,
};
pub use rbt_data::dataset::Dataset;
pub use rbt_linalg::{Matrix, Rotation2, VarianceMode};

/// The one-import surface for release workflows: the typed-state
/// [`Release`] builder, the [`Method`] registry, the
/// [`PrivacyTransform`](rbt_api::PrivacyTransform) traits, the
/// [`RbtError`] taxonomy, and the legacy entry points
/// ([`Pipeline`](rbt_core::Pipeline), [`ReleaseSession`]) they wrap.
pub mod prelude {
    pub use rbt_api::{
        decode_fitted, FitOutput, FittedRelease, FittedTransform, Method, MethodProperties,
        PrivacyTransform, RbtError, Release, ReleaseBuilder,
    };
    pub use rbt_core::{
        DriftBounds, PairingStrategy, PairwiseSecurityThreshold, Pipeline, RbtConfig,
        ReleaseSession, SessionBatch, ThresholdPolicy,
    };
    pub use rbt_data::{Dataset, FittedNormalizer, Normalization};
    pub use rbt_linalg::Matrix;
}
