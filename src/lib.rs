//! # rbt — privacy-preserving clustering via Rotation-Based Transformation
//!
//! Facade crate for the reproduction of Oliveira & Zaïane,
//! *"Achieving Privacy Preservation When Sharing Data For Clustering"*
//! (2004). It re-exports the member crates under stable module names:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`linalg`] | `rbt-linalg` | matrices, statistics, rotations, distances |
//! | [`data`] | `rbt-data` | datasets, normalization, synthetic generators |
//! | [`cluster`] | `rbt-cluster` | k-means, hierarchical, DBSCAN, validation metrics |
//! | [`core`] | `rbt-core` | the RBT method itself (the paper's contribution) |
//! | [`transform`] | `rbt-transform` | baseline perturbation methods |
//! | [`attack`] | `rbt-attack` | attacks on rotation perturbation |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the end-to-end pipeline of the paper's
//! Figure 1: normalize → rotate pairwise under security thresholds → share →
//! cluster, with identical clusters before and after.
//!
//! For streaming workloads — the same persisted secrets applied to batch
//! after batch of arriving records — see [`ReleaseSession`] and
//! `examples/streaming_release.rs`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use rbt_attack as attack;
pub use rbt_cluster as cluster;
pub use rbt_core as core;
pub use rbt_data as data;
pub use rbt_linalg as linalg;
pub use rbt_transform as transform;

// Most-used types at the top level for ergonomic imports.
pub use rbt_core::{
    DriftBounds, PairwiseSecurityThreshold, RbtConfig, RbtTransformer, ReleaseSession, SessionBatch,
};
pub use rbt_data::dataset::Dataset;
pub use rbt_linalg::{Matrix, Rotation2, VarianceMode};
