//! `rbt-cli` — command-line front end for the RBT release workflow.
//!
//! ```text
//! rbt-cli release --input data.csv --output released.csv \
//!         --key key.txt --params norm.txt [--rho 0.3] [--seed N]
//!         [--normalization zscore|minmax|decimal|robust] [--keep-ids]
//! rbt-cli recover --input released.csv --key key.txt --params norm.txt \
//!         --output recovered.csv
//! rbt-cli inspect-key --key key.txt
//! rbt-cli audit --original data.csv --released released.csv
//! ```
//!
//! `release` normalizes, rotates, and writes three artifacts: the shareable
//! CSV, the secret rotation key, and the secret normalization parameters.
//! `recover` is the owner-side inverse. `audit` verifies the isometry and
//! reports per-attribute security levels.

use rand::SeedableRng;
use rbt::core::{Pipeline, RbtConfig, ReleaseSession, TransformationKey};
use rbt::data::{csv, FittedNormalizer, Normalization};
use rbt::{PairwiseSecurityThreshold, VarianceMode};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "release" => cmd_release(rest),
        "recover" => cmd_recover(rest),
        "keygen" => cmd_keygen(rest),
        "transform" => cmd_transform(rest),
        "invert" => cmd_invert(rest),
        "inspect-key" => cmd_inspect_key(rest),
        "audit" => cmd_audit(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
rbt-cli — privacy-preserving data release via Rotation-Based Transformation

USAGE — one-shot release (Figure 1):
  rbt-cli release --input <csv> --output <csv> --key <file> --params <file>
          [--rho <f64, default 0.3>] [--seed <u64, default random>]
          [--normalization zscore|minmax|decimal|robust] [--keep-ids]
  rbt-cli recover --input <csv> --key <file> --params <file> --output <csv>

Streaming release sessions (persisted secrets, batch after batch):
  rbt-cli keygen --input <csv> --key <file> [--released <csv>]
          [--rho <f64, default 0.3>] [--seed <u64, default random>]
          [--normalization zscore|minmax|decimal|robust] [--keep-ids]
          [--format text|binary, default text]
  rbt-cli transform --key <file> --input <csv> --output <csv>
  rbt-cli invert --key <file> --input <csv> --output <csv>

Inspection:
  rbt-cli inspect-key --key <file>
  rbt-cli audit --original <csv> --released <csv>";

/// Minimal `--flag value` / `--switch` parser.
fn parse_flags(args: &[String], switches: &[&str]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument {arg:?}"));
        };
        if switches.contains(&name) {
            out.insert(name.to_string(), "true".to_string());
        } else {
            let value = it
                .next()
                .ok_or_else(|| format!("--{name} requires a value"))?;
            out.insert(name.to_string(), value.clone());
        }
    }
    Ok(out)
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn write_file(path: &Path, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("writing {}: {e}", path.display()))
}

fn read_file(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))
}

fn parse_rho(flags: &HashMap<String, String>) -> Result<f64, String> {
    flags
        .get("rho")
        .map(|v| v.parse().map_err(|e| format!("bad --rho: {e}")))
        .transpose()
        .map(|v| v.unwrap_or(0.3))
}

fn parse_seed(flags: &HashMap<String, String>) -> Result<u64, String> {
    match flags.get("seed") {
        Some(v) => v.parse().map_err(|e| format!("bad --seed: {e}")),
        None => {
            // No seed given: derive one from the OS entropy source.
            Ok(rand::rng().random())
        }
    }
}

fn parse_normalization(flags: &HashMap<String, String>) -> Result<Normalization, String> {
    match flags.get("normalization").map(String::as_str) {
        None | Some("zscore") => Ok(Normalization::zscore_paper()),
        Some("minmax") => Ok(Normalization::min_max_unit()),
        Some("decimal") => Ok(Normalization::DecimalScaling),
        Some("robust") => Ok(Normalization::RobustZScore),
        Some(other) => Err(format!("unknown normalization {other:?}")),
    }
}

fn cmd_release(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["keep-ids"])?;
    let input = PathBuf::from(required(&flags, "input")?);
    let output = PathBuf::from(required(&flags, "output")?);
    let key_path = PathBuf::from(required(&flags, "key")?);
    let params_path = PathBuf::from(required(&flags, "params")?);
    let rho = parse_rho(&flags)?;
    let seed = parse_seed(&flags)?;
    let normalization = parse_normalization(&flags)?;

    let data = csv::read_file(&input).map_err(|e| e.to_string())?;
    let pst = PairwiseSecurityThreshold::uniform(rho).map_err(|e| e.to_string())?;
    let pipeline = Pipeline::new(RbtConfig::uniform(pst))
        .with_normalization(normalization)
        .with_id_suppression(!flags.contains_key("keep-ids"));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let out = pipeline.run(&data, &mut rng).map_err(|e| e.to_string())?;

    csv::write_file(&out.released, &output).map_err(|e| e.to_string())?;
    write_file(&key_path, &out.key.to_string())?;
    write_file(&params_path, &out.normalizer.to_text())?;

    println!(
        "released {} rows x {} attributes -> {}",
        out.released.n_rows(),
        out.released.n_cols(),
        output.display()
    );
    for step in out.key.steps() {
        println!(
            "  rotated pair ({}, {}) by {:.4}° (Var {:.4} / {:.4})",
            step.i, step.j, step.theta_degrees, step.achieved_var1, step.achieved_var2
        );
    }
    println!("secret key     -> {}", key_path.display());
    println!("secret params  -> {}", params_path.display());
    println!("seed (keep private): {seed}");
    Ok(())
}

fn cmd_recover(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &[])?;
    let input = PathBuf::from(required(&flags, "input")?);
    let key_path = PathBuf::from(required(&flags, "key")?);
    let params_path = PathBuf::from(required(&flags, "params")?);
    let output = PathBuf::from(required(&flags, "output")?);

    let released = csv::read_file(&input).map_err(|e| e.to_string())?;
    let key: TransformationKey = read_file(&key_path)?
        .parse()
        .map_err(|e: rbt::core::Error| e.to_string())?;
    let normalizer =
        FittedNormalizer::from_text(&read_file(&params_path)?).map_err(|e| e.to_string())?;

    let normalized = key.invert(released.matrix()).map_err(|e| e.to_string())?;
    let raw = normalizer
        .inverse_transform(&normalized)
        .map_err(|e| e.to_string())?;

    let mut recovered = released.clone();
    recovered.replace_matrix(raw).map_err(|e| e.to_string())?;
    csv::write_file(&recovered, &output).map_err(|e| e.to_string())?;
    println!(
        "recovered {} rows x {} attributes -> {}",
        recovered.n_rows(),
        recovered.n_cols(),
        output.display()
    );
    Ok(())
}

fn cmd_keygen(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["keep-ids"])?;
    let input = PathBuf::from(required(&flags, "input")?);
    let key_path = PathBuf::from(required(&flags, "key")?);
    let rho = parse_rho(&flags)?;
    let seed = parse_seed(&flags)?;
    let normalization = parse_normalization(&flags)?;
    let suppress_ids = !flags.contains_key("keep-ids");
    let binary = match flags.get("format").map(String::as_str) {
        None | Some("text") => false,
        Some("binary") => true,
        Some(other) => return Err(format!("unknown key format {other:?}")),
    };

    let data = csv::read_file(&input).map_err(|e| e.to_string())?;
    let pst = PairwiseSecurityThreshold::uniform(rho).map_err(|e| e.to_string())?;
    let config = RbtConfig::uniform(pst);
    let pipeline = Pipeline::new(config.clone())
        .with_normalization(normalization)
        .with_id_suppression(suppress_ids);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let out = pipeline.run(&data, &mut rng).map_err(|e| e.to_string())?;

    let session = ReleaseSession::from_pipeline_output(&out)
        .map_err(|e| e.to_string())?
        .with_config(config)
        .with_id_suppression(suppress_ids);
    if binary {
        std::fs::write(&key_path, session.to_bytes())
            .map_err(|e| format!("writing {}: {e}", key_path.display()))?;
    } else {
        write_file(&key_path, &session.to_text().map_err(|e| e.to_string())?)?;
    }

    if let Some(released_path) = flags.get("released").map(PathBuf::from) {
        csv::write_file(&out.released, &released_path).map_err(|e| e.to_string())?;
        println!(
            "initial release: {} rows -> {}",
            out.released.n_rows(),
            released_path.display()
        );
    }
    println!(
        "session key for {} attributes ({} rotation steps, {} key file) -> {}",
        out.key.n_attributes(),
        out.key.steps().len(),
        if binary { "binary" } else { "text" },
        key_path.display()
    );
    println!(
        "fitted on {} records; keep the key file private",
        data.n_rows()
    );
    println!("seed (keep private): {seed}");
    Ok(())
}

fn load_session(key_path: &Path) -> Result<ReleaseSession, String> {
    let bytes =
        std::fs::read(key_path).map_err(|e| format!("reading {}: {e}", key_path.display()))?;
    ReleaseSession::decode(&bytes).map_err(|e| e.to_string())
}

fn cmd_transform(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &[])?;
    let key_path = PathBuf::from(required(&flags, "key")?);
    let input = PathBuf::from(required(&flags, "input")?);
    let output = PathBuf::from(required(&flags, "output")?);

    let mut session = load_session(&key_path)?;
    let data = csv::read_file(&input).map_err(|e| e.to_string())?;
    let batch = session.transform_batch(&data).map_err(|e| e.to_string())?;
    csv::write_file(&batch.released, &output).map_err(|e| e.to_string())?;

    println!(
        "transformed {} rows x {} attributes -> {}",
        batch.released.n_rows(),
        batch.released.n_cols(),
        output.display()
    );
    if batch.out_of_range_rows > 0 {
        println!(
            "warning: {} of {} records fall outside the fitted normalization \
             range — consider re-fitting the session",
            batch.out_of_range_rows,
            data.n_rows()
        );
    } else {
        println!("drift: 0 records outside the fitted range");
    }
    Ok(())
}

fn cmd_invert(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &[])?;
    let key_path = PathBuf::from(required(&flags, "key")?);
    let input = PathBuf::from(required(&flags, "input")?);
    let output = PathBuf::from(required(&flags, "output")?);

    let session = load_session(&key_path)?;
    let data = csv::read_file(&input).map_err(|e| e.to_string())?;
    let recovered = session.invert_batch(&data).map_err(|e| e.to_string())?;
    csv::write_file(&recovered, &output).map_err(|e| e.to_string())?;
    println!(
        "recovered {} rows x {} attributes -> {}",
        recovered.n_rows(),
        recovered.n_cols(),
        output.display()
    );
    Ok(())
}

fn cmd_inspect_key(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &[])?;
    let key_path = PathBuf::from(required(&flags, "key")?);
    let bytes =
        std::fs::read(&key_path).map_err(|e| format!("reading {}: {e}", key_path.display()))?;
    // Session key files (binary or text) carry more than the key. Only
    // files that do not *look like* sessions fall through to the legacy
    // bare-key text parser — a corrupted session file must surface its
    // decode error (e.g. a checksum mismatch), not a misleading legacy
    // parse failure.
    let looks_like_session = bytes.starts_with(&rbt::core::codec::MAGIC)
        || std::str::from_utf8(&bytes).is_ok_and(|t| t.trim_start().starts_with("rbt-session"));
    let key: TransformationKey = if looks_like_session {
        let session = ReleaseSession::decode(&bytes).map_err(|e| e.to_string())?;
        println!(
            "session key file: normalizer for {} columns, drift bounds {}, \
             config {}, id suppression {}",
            session.normalizer().n_cols(),
            if session.drift_bounds().is_some() {
                "attached"
            } else {
                "absent"
            },
            if session.config().is_some() {
                "attached"
            } else {
                "absent"
            },
            if session.suppresses_ids() {
                "on"
            } else {
                "off"
            }
        );
        session.key().clone()
    } else {
        String::from_utf8_lossy(&bytes)
            .parse()
            .map_err(|e: rbt::core::Error| e.to_string())?
    };
    println!(
        "key for {} attributes, {} rotation steps:",
        key.n_attributes(),
        key.steps().len()
    );
    for (t, step) in key.steps().iter().enumerate() {
        println!(
            "  step {t}: pair ({}, {}), θ = {:.6}°, achieved Var = ({:.4}, {:.4})",
            step.i, step.j, step.theta_degrees, step.achieved_var1, step.achieved_var2
        );
    }
    let composite = key.composite_matrix().map_err(|e| e.to_string())?;
    println!(
        "composite rotation is orthogonal: {}",
        rbt::linalg::rotation::is_orthogonal(&composite, 1e-9)
    );
    Ok(())
}

fn cmd_audit(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &[])?;
    let original_path = PathBuf::from(required(&flags, "original")?);
    let released_path = PathBuf::from(required(&flags, "released")?);
    let original = csv::read_file(&original_path).map_err(|e| e.to_string())?;
    let released = csv::read_file(&released_path).map_err(|e| e.to_string())?;
    if original.n_rows() != released.n_rows() {
        return Err(format!(
            "row count mismatch: {} vs {}",
            original.n_rows(),
            released.n_rows()
        ));
    }

    // The release should be an isometric image of the *normalized* original.
    let (_, normalized) = Normalization::zscore_paper()
        .fit_transform(original.matrix())
        .map_err(|e| e.to_string())?;
    let drift = rbt::core::isometry::dissimilarity_drift(&normalized, released.matrix());
    println!("distance drift vs z-scored original: {drift:.3e}");
    println!("isometric (tolerance 1e-6): {}", drift < 1e-6);

    println!("per-attribute security level Sec = Var(X - X') / Var(X):");
    for j in 0..original.n_cols().min(released.n_cols()) {
        let sec = rbt::core::security::security_level(
            &normalized.column(j),
            &released.matrix().column(j),
            VarianceMode::Sample,
        )
        .map_err(|e| e.to_string())?;
        println!("  {:<16} {sec:.4}", original.columns()[j]);
    }
    Ok(())
}
