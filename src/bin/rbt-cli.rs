//! `rbt-cli` — command-line front end for the privacy-preserving release
//! workflow.
//!
//! ```text
//! rbt-cli methods
//! rbt-cli release --input data.csv --output released.csv \
//!         --key key.txt --params norm.txt [--rho 0.3] [--seed N]
//!         [--normalization zscore|minmax|decimal|robust] [--keep-ids]
//! rbt-cli recover --input released.csv --key key.txt --params norm.txt \
//!         --output recovered.csv
//! rbt-cli keygen --input data.csv --key session.rbt [--method rbt]
//! rbt-cli transform/invert --key session.rbt --input b.csv --output o.csv
//! rbt-cli inspect-key --key key.txt
//! rbt-cli audit --original data.csv --released released.csv
//! rbt-cli serve --keys <dir> [--addr host:port] [--capacity N] [--window W]
//!         [--max-conns N] [--read-timeout ms] [--drain-timeout ms]
//! rbt-cli bench-serve [--tenants N | N,N,...] [--rows N] [--batches N]
//!         [--quick-smoke] [--restart-mid-run]
//! rbt-cli federate coordinate --addr host:port --session N --owners N --cols C
//! rbt-cli federate join --addr host:port --session N --owner I --input b.csv
//! rbt-cli federate receive --addr host:port --session N [--output labels.csv]
//! ```
//!
//! `release` normalizes, rotates, and writes three artifacts: the shareable
//! CSV, the secret rotation key, and the secret normalization parameters.
//! `recover` is the owner-side inverse. `audit` verifies the isometry and
//! reports per-attribute security levels. `keygen` fits any registered
//! method (`rbt-cli methods` lists them) and persists the fitted state;
//! `transform`/`invert` apply/undo it batch by batch.
//!
//! Failures exit with a distinct code per family (see
//! [`RbtError::exit_code`]): 2 usage/config, 3 input data, 4 corrupt key
//! files, 5 shape mismatches, 6 infeasible thresholds, 7 method
//! capability.

use rand::SeedableRng;
use rbt::api::{decode_fitted, FittedRbt, FittedTransform, Method, PrivacyTransform, RbtError};
use rbt::core::{Pipeline, RbtConfig, ReleaseSession, TransformationKey};
use rbt::data::{csv, FittedNormalizer, Normalization};
use rbt::prelude::Release;
use rbt::protocol::{FederationConfig, KeyPolicy, Message, Owner, Party, ProtocolError};
use rbt::server::{
    Client, ClientError, KeyStore, RetryPolicy, Server, ServerConfig, ServerError, SessionRegistry,
};
use rbt::{Dataset, Matrix, PairwiseSecurityThreshold, VarianceMode};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A CLI failure: what went wrong plus the exit code family it belongs to.
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    /// A usage/config error (exit code 2).
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            code: 2,
            message: message.into(),
        }
    }

    /// A file-system error (exit code 3, same family as unreadable data).
    fn io(message: impl Into<String>) -> Self {
        CliError {
            code: 3,
            message: message.into(),
        }
    }
}

impl From<RbtError> for CliError {
    fn from(e: RbtError) -> Self {
        CliError {
            code: e.exit_code(),
            message: e.to_string(),
        }
    }
}

impl From<rbt::core::Error> for CliError {
    fn from(e: rbt::core::Error) -> Self {
        RbtError::from(e).into()
    }
}

impl From<rbt::data::Error> for CliError {
    fn from(e: rbt::data::Error) -> Self {
        RbtError::from(e).into()
    }
}

impl From<ServerError> for CliError {
    fn from(e: ServerError) -> Self {
        CliError {
            code: e.code(),
            message: e.to_string(),
        }
    }
}

type CliResult<T> = Result<T, CliError>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "methods" => cmd_methods(rest),
        "release" => cmd_release(rest),
        "recover" => cmd_recover(rest),
        "keygen" => cmd_keygen(rest),
        "transform" => cmd_transform(rest),
        "invert" => cmd_invert(rest),
        "inspect-key" => cmd_inspect_key(rest),
        "audit" => cmd_audit(rest),
        "serve" => cmd_serve(rest),
        "bench-serve" => cmd_bench_serve(rest),
        "federate" => cmd_federate(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command {other:?}\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}

const USAGE: &str = "\
rbt-cli — privacy-preserving data release via Rotation-Based Transformation

USAGE — the method registry:
  rbt-cli methods                 list every registered release method

One-shot RBT release (Figure 1):
  rbt-cli release --input <csv> --output <csv> --key <file> --params <file>
          [--rho <f64, default 0.3>] [--seed <u64, default random>]
          [--normalization zscore|minmax|decimal|robust] [--keep-ids]
  rbt-cli recover --input <csv> --key <file> --params <file> --output <csv>

Fitted release sessions (any method; persisted secrets, batch after batch):
  rbt-cli keygen --input <csv> --key <file> [--method <name, default rbt>]
          [--released <csv>] [--rho <f64, default 0.3>]
          [--seed <u64, default random>]
          [--normalization zscore|minmax|decimal|robust] [--keep-ids]
          [--format text|binary, default text (rbt); binary only otherwise]
  rbt-cli transform --key <file> --input <csv> --output <csv>
  rbt-cli invert --key <file> --input <csv> --output <csv>

Inspection:
  rbt-cli inspect-key --key <file>
  rbt-cli audit --original <csv> --released <csv>

Serving (the multi-tenant release daemon; see ARCHITECTURE.md \"Serving layer\"):
  rbt-cli serve --keys <dir> [--addr <host:port, default 127.0.0.1:7533>]
          [--capacity <live sessions, default 64>]
          [--window <in-flight requests per connection, default 8>]
          [--max-conns <connection cap, default 256>]
          [--read-timeout <ms before an idle/stalled peer is reaped, default 60000>]
          [--drain-timeout <ms shutdown waits for in-flight work, default 5000>]
  rbt-cli bench-serve [--tenants <N or comma list, default 8>] [--rows <per batch>]
          [--batches <per tenant>] [--out <json path>] [--quick-smoke]
          [--restart-mid-run]
    A comma list (e.g. --tenants 2,4,8) sweeps tenant counts and records
    the scaling curve in the JSON report; --restart-mid-run applies to the
    last point of the sweep.

Federated release (N owners, one joint clustering; ARCHITECTURE.md
\"Federated release layer\"):
  rbt-cli federate coordinate --addr <host:port> --session <u64>
          --owners <N> --cols <C> [--rho <f64, default 0.3>] [--seed <u64>]
          [--normalization zscore|minmax|decimal|robust] [--k <clusters, default 3>]
          [--max-iters <default 128>] [--key-policy shared|per-owner]
  rbt-cli federate join --addr <host:port> --session <u64> --owner <idx>
          --input <csv> [--key <file to save the reconstructed key>]
          [--wait-ms <poll budget, default 60000>]
  rbt-cli federate receive --addr <host:port> --session <u64>
          [--output <labels csv>] [--wait-ms <poll budget, default 60000>]

Exit codes: 0 ok · 2 usage/config · 3 input data · 4 corrupt key file ·
5 shape mismatch · 6 infeasible threshold · 7 method capability · 1 other";

/// Minimal `--flag value` / `--switch` parser.
fn parse_flags(args: &[String], switches: &[&str]) -> CliResult<HashMap<String, String>> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(CliError::usage(format!("unexpected argument {arg:?}")));
        };
        if switches.contains(&name) {
            out.insert(name.to_string(), "true".to_string());
        } else {
            let value = it
                .next()
                .ok_or_else(|| CliError::usage(format!("--{name} requires a value")))?;
            out.insert(name.to_string(), value.clone());
        }
    }
    Ok(out)
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> CliResult<&'a str> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| CliError::usage(format!("missing required flag --{name}")))
}

fn write_file(path: &Path, contents: &str) -> CliResult<()> {
    std::fs::write(path, contents)
        .map_err(|e| CliError::io(format!("writing {}: {e}", path.display())))
}

fn read_file(path: &Path) -> CliResult<String> {
    std::fs::read_to_string(path)
        .map_err(|e| CliError::io(format!("reading {}: {e}", path.display())))
}

fn parse_rho(flags: &HashMap<String, String>) -> CliResult<f64> {
    flags
        .get("rho")
        .map(|v| {
            v.parse()
                .map_err(|e| CliError::usage(format!("bad --rho: {e}")))
        })
        .transpose()
        .map(|v| v.unwrap_or(0.3))
}

fn parse_seed(flags: &HashMap<String, String>) -> CliResult<u64> {
    match flags.get("seed") {
        Some(v) => v
            .parse()
            .map_err(|e| CliError::usage(format!("bad --seed: {e}"))),
        None => {
            // No seed given: derive one from the OS entropy source.
            Ok(rand::rng().random())
        }
    }
}

fn parse_normalization(flags: &HashMap<String, String>) -> CliResult<Normalization> {
    match flags.get("normalization").map(String::as_str) {
        None | Some("zscore") => Ok(Normalization::zscore_paper()),
        Some("minmax") => Ok(Normalization::min_max_unit()),
        Some("decimal") => Ok(Normalization::DecimalScaling),
        Some("robust") => Ok(Normalization::RobustZScore),
        Some(other) => Err(CliError::usage(format!("unknown normalization {other:?}"))),
    }
}

fn read_csv(path: &Path) -> CliResult<rbt::Dataset> {
    Ok(csv::read_file(path)?)
}

fn write_csv(ds: &rbt::Dataset, path: &Path) -> CliResult<()> {
    Ok(csv::write_file(ds, path)?)
}

fn cmd_methods(args: &[String]) -> CliResult<()> {
    parse_flags(args, &[])?;
    println!("registered release methods:");
    for m in Method::ALL {
        let t = m.default_transform();
        let p = t.properties();
        println!("  {:<16} {}", m.name(), m.description());
        println!("  {:<16}   {p}", "");
    }
    println!("\nselect one with `rbt-cli keygen --method <name>`");
    Ok(())
}

fn cmd_release(args: &[String]) -> CliResult<()> {
    let flags = parse_flags(args, &["keep-ids"])?;
    let input = PathBuf::from(required(&flags, "input")?);
    let output = PathBuf::from(required(&flags, "output")?);
    let key_path = PathBuf::from(required(&flags, "key")?);
    let params_path = PathBuf::from(required(&flags, "params")?);
    let rho = parse_rho(&flags)?;
    let seed = parse_seed(&flags)?;
    let normalization = parse_normalization(&flags)?;

    let data = read_csv(&input)?;
    let pst = PairwiseSecurityThreshold::uniform(rho)
        .map_err(|e| CliError::usage(format!("bad --rho: {e}")))?;
    let pipeline = Pipeline::new(RbtConfig::uniform(pst))
        .with_normalization(normalization)
        .with_id_suppression(!flags.contains_key("keep-ids"));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let out = pipeline.run(&data, &mut rng)?;

    write_csv(&out.released, &output)?;
    write_file(&key_path, &out.key.to_string())?;
    write_file(&params_path, &out.normalizer.to_text())?;

    println!(
        "released {} rows x {} attributes -> {}",
        out.released.n_rows(),
        out.released.n_cols(),
        output.display()
    );
    for step in out.key.steps() {
        println!(
            "  rotated pair ({}, {}) by {:.4}° (Var {:.4} / {:.4})",
            step.i, step.j, step.theta_degrees, step.achieved_var1, step.achieved_var2
        );
    }
    println!("secret key     -> {}", key_path.display());
    println!("secret params  -> {}", params_path.display());
    println!("seed (keep private): {seed}");
    Ok(())
}

fn cmd_recover(args: &[String]) -> CliResult<()> {
    let flags = parse_flags(args, &[])?;
    let input = PathBuf::from(required(&flags, "input")?);
    let key_path = PathBuf::from(required(&flags, "key")?);
    let params_path = PathBuf::from(required(&flags, "params")?);
    let output = PathBuf::from(required(&flags, "output")?);

    let released = read_csv(&input)?;
    let key = read_file(&key_path)?
        .parse::<TransformationKey>()
        .map_err(CliError::from)?;
    // A params file that fails to parse is a corrupt secret artifact —
    // the same failure family as a corrupt key file (exit 4), not bad
    // input data (which is what its rbt_data parse error would map to).
    let normalizer =
        FittedNormalizer::from_text(&read_file(&params_path)?).map_err(|e| CliError {
            code: 4,
            message: format!("params file {}: {e}", params_path.display()),
        })?;

    let normalized = key.invert(released.matrix())?;
    let raw = normalizer.inverse_transform(&normalized)?;

    let mut recovered = released.clone();
    recovered.replace_matrix(raw)?;
    write_csv(&recovered, &output)?;
    println!(
        "recovered {} rows x {} attributes -> {}",
        recovered.n_rows(),
        recovered.n_cols(),
        output.display()
    );
    Ok(())
}

fn cmd_keygen(args: &[String]) -> CliResult<()> {
    let flags = parse_flags(args, &["keep-ids"])?;
    let input = PathBuf::from(required(&flags, "input")?);
    let key_path = PathBuf::from(required(&flags, "key")?);
    let method = Method::from_name(flags.get("method").map_or("rbt", String::as_str))?;
    let rho = parse_rho(&flags)?;
    let seed = parse_seed(&flags)?;
    let normalization = parse_normalization(&flags)?;
    let suppress_ids = !flags.contains_key("keep-ids");
    let binary = match flags.get("format").map(String::as_str) {
        None | Some("text") => false,
        Some("binary") => true,
        Some(other) => return Err(CliError::usage(format!("unknown key format {other:?}"))),
    };

    let data = read_csv(&input)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    if method == Method::Rbt {
        // The RBT path keeps emitting the session record (text or binary),
        // byte-compatible with every existing key file.
        let pst = PairwiseSecurityThreshold::uniform(rho)
            .map_err(|e| CliError::usage(format!("bad --rho: {e}")))?;
        let config = RbtConfig::uniform(pst);
        let pipeline = Pipeline::new(config.clone())
            .with_normalization(normalization)
            .with_id_suppression(suppress_ids);
        let out = pipeline.run(&data, &mut rng)?;

        let session = ReleaseSession::from_pipeline_output(&out)?
            .with_config(config)
            .with_id_suppression(suppress_ids);
        if binary {
            std::fs::write(&key_path, session.to_bytes())
                .map_err(|e| CliError::io(format!("writing {}: {e}", key_path.display())))?;
        } else {
            write_file(&key_path, &session.to_text()?)?;
        }

        if let Some(released_path) = flags.get("released").map(PathBuf::from) {
            write_csv(&out.released, &released_path)?;
            println!(
                "initial release: {} rows -> {}",
                out.released.n_rows(),
                released_path.display()
            );
        }
        println!(
            "session key for {} attributes ({} rotation steps, {} key file) -> {}",
            out.key.n_attributes(),
            out.key.steps().len(),
            if binary { "binary" } else { "text" },
            key_path.display()
        );
    } else {
        if flags.contains_key("format") && !binary {
            return Err(CliError::usage(format!(
                "method {:?} has no text key-file form; use --format binary or omit --format",
                method.name()
            )));
        }
        let mut builder = Release::of(&data)
            .with_method(method)
            .with_id_suppression(suppress_ids);
        // Baselines take no thresholds/normalization; forward the flags
        // only where they mean something so the error message names the
        // actual mistake.
        if method == Method::HybridIsometry {
            let pst = PairwiseSecurityThreshold::uniform(rho)
                .map_err(|e| CliError::usage(format!("bad --rho: {e}")))?;
            builder = builder
                .with_thresholds(pst)
                .with_normalization(normalization);
        } else if flags.contains_key("rho") || flags.contains_key("normalization") {
            return Err(CliError::usage(format!(
                "method {:?} takes no --rho/--normalization (it perturbs raw values); \
                 see `rbt-cli methods`",
                method.name()
            )));
        }
        let fitted = builder.fit(&mut rng)?;
        std::fs::write(&key_path, fitted.to_bytes()?)
            .map_err(|e| CliError::io(format!("writing {}: {e}", key_path.display())))?;
        if let Some(released_path) = flags.get("released").map(PathBuf::from) {
            write_csv(fitted.released(), &released_path)?;
            println!(
                "initial release: {} rows -> {}",
                fitted.released().n_rows(),
                released_path.display()
            );
        }
        println!(
            "fitted {} state for {} attributes ({}) -> {}",
            fitted.method_name(),
            fitted.n_attributes(),
            fitted.properties(),
            key_path.display()
        );
    }
    println!(
        "fitted on {} records; keep the key file private",
        data.n_rows()
    );
    println!("seed (keep private): {seed}");
    Ok(())
}

fn load_fitted(key_path: &Path) -> CliResult<Box<dyn FittedTransform>> {
    let bytes = std::fs::read(key_path)
        .map_err(|e| CliError::io(format!("reading {}: {e}", key_path.display())))?;
    Ok(decode_fitted(&bytes)?)
}

fn cmd_transform(args: &[String]) -> CliResult<()> {
    let flags = parse_flags(args, &[])?;
    let key_path = PathBuf::from(required(&flags, "key")?);
    let input = PathBuf::from(required(&flags, "input")?);
    let output = PathBuf::from(required(&flags, "output")?);

    let mut fitted = load_fitted(&key_path)?;
    let data = read_csv(&input)?;

    // RBT sessions report drift; other methods transform generically.
    if let Some(session) = fitted
        .as_any()
        .downcast_ref::<FittedRbt>()
        .map(FittedRbt::session)
    {
        let mut session = session.clone();
        let batch = session.transform_batch(&data)?;
        write_csv(&batch.released, &output)?;
        println!(
            "transformed {} rows x {} attributes -> {}",
            batch.released.n_rows(),
            batch.released.n_cols(),
            output.display()
        );
        if batch.out_of_range_rows > 0 {
            println!(
                "warning: {} of {} records fall outside the fitted normalization \
                 range — consider re-fitting the session",
                batch.out_of_range_rows,
                data.n_rows()
            );
        } else {
            println!("drift: 0 records outside the fitted range");
        }
    } else {
        let released = fitted.transform_batch(&data)?;
        write_csv(&released, &output)?;
        println!(
            "transformed {} rows x {} attributes ({}) -> {}",
            released.n_rows(),
            released.n_cols(),
            fitted.method_name(),
            output.display()
        );
    }
    Ok(())
}

fn cmd_invert(args: &[String]) -> CliResult<()> {
    let flags = parse_flags(args, &[])?;
    let key_path = PathBuf::from(required(&flags, "key")?);
    let input = PathBuf::from(required(&flags, "input")?);
    let output = PathBuf::from(required(&flags, "output")?);

    let fitted = load_fitted(&key_path)?;
    let data = read_csv(&input)?;
    let recovered = fitted.invert_batch(&data)?;
    write_csv(&recovered, &output)?;
    println!(
        "recovered {} rows x {} attributes -> {}",
        recovered.n_rows(),
        recovered.n_cols(),
        output.display()
    );
    Ok(())
}

fn cmd_inspect_key(args: &[String]) -> CliResult<()> {
    let flags = parse_flags(args, &[])?;
    let key_path = PathBuf::from(required(&flags, "key")?);
    let bytes = std::fs::read(&key_path)
        .map_err(|e| CliError::io(format!("reading {}: {e}", key_path.display())))?;
    // Session key files (binary or text) carry more than the key. Only
    // files that do not *look like* sessions fall through to the legacy
    // bare-key text parser — a corrupted session file must surface its
    // decode error (e.g. a checksum mismatch), not a misleading legacy
    // parse failure.
    let looks_like_session = bytes.starts_with(&rbt::core::codec::MAGIC)
        || std::str::from_utf8(&bytes).is_ok_and(|t| t.trim_start().starts_with("rbt-session"));
    let key: TransformationKey = if looks_like_session {
        let fitted = decode_fitted(&bytes)?;
        let Some(session) = fitted
            .as_any()
            .downcast_ref::<FittedRbt>()
            .map(FittedRbt::session)
        else {
            // A fitted non-RBT method: report its descriptor and stop.
            println!(
                "fitted {} state for {} attributes: {}",
                fitted.method_name(),
                fitted.n_attributes(),
                fitted.properties()
            );
            return Ok(());
        };
        println!(
            "session key file: normalizer for {} columns, drift bounds {}, \
             config {}, id suppression {}",
            session.normalizer().n_cols(),
            if session.drift_bounds().is_some() {
                "attached"
            } else {
                "absent"
            },
            if session.config().is_some() {
                "attached"
            } else {
                "absent"
            },
            if session.suppresses_ids() {
                "on"
            } else {
                "off"
            }
        );
        session.key().clone()
    } else {
        String::from_utf8_lossy(&bytes)
            .parse::<TransformationKey>()
            .map_err(CliError::from)?
    };
    println!(
        "key for {} attributes, {} rotation steps:",
        key.n_attributes(),
        key.steps().len()
    );
    for (t, step) in key.steps().iter().enumerate() {
        println!(
            "  step {t}: pair ({}, {}), θ = {:.6}°, achieved Var = ({:.4}, {:.4})",
            step.i, step.j, step.theta_degrees, step.achieved_var1, step.achieved_var2
        );
    }
    let composite = key.composite_matrix()?;
    println!(
        "composite rotation is orthogonal: {}",
        rbt::linalg::rotation::is_orthogonal(&composite, 1e-9)
    );
    Ok(())
}

fn cmd_audit(args: &[String]) -> CliResult<()> {
    let flags = parse_flags(args, &[])?;
    let original_path = PathBuf::from(required(&flags, "original")?);
    let released_path = PathBuf::from(required(&flags, "released")?);
    let original = read_csv(&original_path)?;
    let released = read_csv(&released_path)?;
    if original.n_rows() != released.n_rows() {
        return Err(RbtError::DimensionMismatch(format!(
            "row count mismatch: {} vs {}",
            original.n_rows(),
            released.n_rows()
        ))
        .into());
    }

    // The release should be an isometric image of the *normalized* original.
    let (_, normalized) = Normalization::zscore_paper().fit_transform(original.matrix())?;
    let drift = rbt::core::isometry::dissimilarity_drift(&normalized, released.matrix());
    println!("distance drift vs z-scored original: {drift:.3e}");
    println!("isometric (tolerance 1e-6): {}", drift < 1e-6);

    println!("per-attribute security level Sec = Var(X - X') / Var(X):");
    for j in 0..original.n_cols().min(released.n_cols()) {
        let sec = rbt::core::security::security_level(
            &normalized.column(j),
            &released.matrix().column(j),
            VarianceMode::Sample,
        )?;
        println!("  {:<16} {sec:.4}", original.columns()[j]);
    }
    Ok(())
}

fn parse_flag_usize(
    flags: &HashMap<String, String>,
    name: &str,
    default: usize,
) -> CliResult<usize> {
    match flags.get(name) {
        Some(v) => v
            .parse()
            .map_err(|e| CliError::usage(format!("bad --{name}: {e}"))),
        None => Ok(default),
    }
}

fn parse_flag_ms(
    flags: &HashMap<String, String>,
    name: &str,
    default_ms: u64,
) -> CliResult<Duration> {
    match flags.get(name) {
        Some(v) => v
            .parse()
            .map(Duration::from_millis)
            .map_err(|e| CliError::usage(format!("bad --{name}: {e}"))),
        None => Ok(Duration::from_millis(default_ms)),
    }
}

fn cmd_serve(args: &[String]) -> CliResult<()> {
    let flags = parse_flags(args, &[])?;
    let keys_dir = PathBuf::from(required(&flags, "keys")?);
    let addr = flags
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:7533");
    let capacity = parse_flag_usize(&flags, "capacity", 64)?;
    let window = parse_flag_usize(&flags, "window", 8)?;
    let max_conns = parse_flag_usize(&flags, "max-conns", 256)?;
    let read_timeout = parse_flag_ms(&flags, "read-timeout", 60_000)?;
    let drain_timeout = parse_flag_ms(&flags, "drain-timeout", 5_000)?;

    if !keys_dir.is_dir() {
        return Err(CliError::io(format!(
            "key directory {} does not exist",
            keys_dir.display()
        )));
    }

    // The crash-safe key store replays any interrupted writes, then
    // registers every key. A corrupt key file is quarantined (moved to
    // .quarantine/ and logged), never fatal — one torn key must not take
    // down every healthy tenant.
    let store = Arc::new(
        KeyStore::open(&keys_dir)
            .map_err(|e| CliError::io(format!("opening key store {}: {e}", keys_dir.display())))?,
    );
    let replay = store.replay_report();
    if replay.completed + replay.discarded > 0 {
        println!(
            "key store journal replay: {} interrupted writes completed, {} discarded",
            replay.completed, replay.discarded
        );
    }
    let registry = Arc::new(SessionRegistry::new(capacity));
    let report = store
        .load_into(&registry)
        .map_err(|e| CliError::io(format!("loading keys: {e}")))?;

    let config = ServerConfig {
        window,
        max_conns,
        idle_timeout: read_timeout,
        stall_budget: read_timeout,
        drain_deadline: drain_timeout,
        keystore: Some(Arc::clone(&store)),
        ..ServerConfig::default()
    };
    let server = Server::spawn_with(addr, registry, config)
        .map_err(|e| CliError::io(format!("binding {addr}: {e}")))?;
    println!(
        "serving {} tenants on {} ({} quarantined; capacity {capacity} live sessions, \
         window {window} in-flight per connection, max {max_conns} connections)",
        report.loaded,
        server.local_addr(),
        report.quarantined
    );
    // serve is often driven through a pipe (tests, supervisors); make the
    // banner visible before blocking in the accept loop.
    let _ = std::io::stdout().flush();
    server.wait();
    Ok(())
}

/// Deterministic per-tenant fitting data for the load generator.
fn bench_tenant_data(tenant: usize, rows: usize, cols: usize, spread: f64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB0A7 + tenant as u64);
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.random::<f64>() * spread - spread / 2.0)
        .collect();
    Dataset::new(
        Matrix::from_vec(rows, cols, data).unwrap(),
        (0..cols).map(|j| format!("attr{j}")).collect(),
    )
    .unwrap()
}

/// One measured point of the tenant-scaling sweep.
struct BenchPoint {
    tenants: usize,
    total_rows: usize,
    wall: f64,
    rows_per_sec: f64,
    p50: u64,
    p90: u64,
    p99: u64,
    max: u64,
    drift_rows: u64,
    capacity: u64,
    live_sessions: u64,
    total_evictions: u64,
}

fn cmd_bench_serve(args: &[String]) -> CliResult<()> {
    let flags = parse_flags(args, &["quick-smoke", "restart-mid-run"])?;
    let quick = flags.contains_key("quick-smoke");
    let restart = flags.contains_key("restart-mid-run");
    // `--tenants` takes a single count or a comma list; a list sweeps the
    // counts in order and the JSON report records the scaling curve.
    let tenant_counts: Vec<usize> = match flags.get("tenants") {
        Some(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .map(|n| n.max(1))
                    .map_err(|e| CliError::usage(format!("bad --tenants entry {s:?}: {e}")))
            })
            .collect::<CliResult<Vec<_>>>()?,
        None => vec![8],
    };
    if tenant_counts.is_empty() {
        return Err(CliError::usage("--tenants needs at least one count"));
    }
    // `--conns` takes a comma list of concurrent-connection counts and
    // runs the connection-scaling sweep after the tenant sweep. Counts
    // beyond what the open-file budget can hold are clamped (client and
    // server share this process, so each connection costs two fds).
    let conn_counts: Vec<usize> = match flags.get("conns") {
        Some(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .map(|n| n.max(1))
                    .map_err(|e| CliError::usage(format!("bad --conns entry {s:?}: {e}")))
            })
            .collect::<CliResult<Vec<_>>>()?,
        None => Vec::new(),
    };
    let rows = parse_flag_usize(&flags, "rows", if quick { 64 } else { 2000 })?.max(1);
    let batches = parse_flag_usize(&flags, "batches", if quick { 4 } else { 50 })?.max(1);
    let out_path = flags.get("out").map(PathBuf::from).unwrap_or_else(|| {
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_server.json"))
    });
    let cols = 4;
    let max_tenants = *tenant_counts.iter().max().expect("non-empty counts");

    // Fit one RBT session per tenant on its own data, once for the
    // largest count — smaller sweep points reuse a prefix, so tenant `t`
    // serves the identical key at every point. Random draws can make a
    // pairwise threshold infeasible; retry with fresh seeds (still
    // deterministic) until every tenant fits.
    let method = rbt::api::RbtMethod::new(RbtConfig::uniform(
        PairwiseSecurityThreshold::uniform(0.05).map_err(|e| CliError::usage(e.to_string()))?,
    ));
    let mut keys: Vec<Vec<u8>> = Vec::with_capacity(max_tenants);
    for t in 0..max_tenants {
        let fit_data = bench_tenant_data(t, 256, cols, 100.0);
        let fitted = (0..20)
            .find_map(|attempt| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(7919 * (t as u64 + 1) + attempt);
                method.fit(&fit_data, &mut rng).ok()
            })
            .ok_or_else(|| CliError::usage(format!("tenant {t}: no feasible key in 20 draws")))?;
        keys.push(fitted.fitted.to_bytes()?);
    }

    let mut points = Vec::with_capacity(tenant_counts.len());
    for (i, &tenants) in tenant_counts.iter().enumerate() {
        // The restart drill only makes sense once per invocation; run it
        // on the final (usually largest) point.
        let point_restart = restart && i + 1 == tenant_counts.len();
        let point = bench_point(
            tenants,
            &keys[..tenants],
            rows,
            batches,
            cols,
            point_restart,
        )?;
        println!(
            "bench-serve [{}/{}]: {tenants} tenants x {batches} batches x {rows} rows \
             = {} rows in {:.2}s (sustained {:.0} rows/sec, p50 {} us, p99 {} us)",
            i + 1,
            tenant_counts.len(),
            point.total_rows,
            point.wall,
            point.rows_per_sec,
            point.p50,
            point.p99
        );
        points.push(point);
    }
    let head = points.last().expect("at least one sweep point");

    // The connection-scaling sweep: each point parks a herd of idle
    // connections on the server while a small active set keeps the
    // transform path hot, proving the event-driven core holds the herd on
    // a handful of OS threads without giving up throughput.
    let mut conn_points: Vec<ConnPoint> = Vec::with_capacity(conn_counts.len());
    for (i, &want) in conn_counts.iter().enumerate() {
        let conns = clamp_to_fd_budget(want);
        if conns < want {
            println!(
                "bench-serve: clamping --conns {want} to {conns} (open-file budget {})",
                fd_soft_limit().unwrap_or(0)
            );
        }
        let point = bench_conn_point(conns, &keys, rows, batches, cols)?;
        println!(
            "bench-serve conns [{}/{}]: {} connections ({} idle + {} active) -> \
             {:.0} rows/sec sustained, p50 {} us, p99 {} us, {} process threads",
            i + 1,
            conn_counts.len(),
            point.conns,
            point.idle,
            point.active,
            point.rows_per_sec,
            point.p50,
            point.p99,
            point.process_threads
        );
        conn_points.push(point);
    }

    let mut json = String::from("{\n");
    let conns_flag = if conn_counts.is_empty() {
        String::new()
    } else {
        format!(
            " --conns {}",
            conn_counts
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
    };
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --release --bin rbt-cli -- bench-serve{}{}\",",
        if quick { " --quick-smoke" } else { "" },
        conns_flag
    );
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick-smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"restarted_mid_run\": {restart},");
    let _ = writeln!(
        json,
        "  \"host_threads\": {},",
        rbt::linalg::pool::default_threads()
    );
    let _ = writeln!(
        json,
        "  \"connection_core\": \"{}\",",
        match ServerConfig::default().core {
            rbt::server::ConnectionCore::Reactor => "reactor",
            rbt::server::ConnectionCore::Threaded => "threaded",
        }
    );
    let _ = writeln!(json, "  \"tenants\": {},", head.tenants);
    let _ = writeln!(json, "  \"rows_per_batch\": {rows},");
    let _ = writeln!(json, "  \"batches_per_tenant\": {batches},");
    let _ = writeln!(json, "  \"total_rows\": {},", head.total_rows);
    let _ = writeln!(json, "  \"wall_seconds\": {:.6},", head.wall);
    let _ = writeln!(
        json,
        "  \"sustained_rows_per_sec\": {:.1},",
        head.rows_per_sec
    );
    let _ = writeln!(
        json,
        "  \"latency_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}},",
        head.p50, head.p90, head.p99, head.max
    );
    let _ = writeln!(
        json,
        "  \"server\": {{\"capacity\": {}, \"live_sessions\": {}, \"total_evictions\": {}, \
         \"drift_rows_total\": {}}},",
        head.capacity, head.live_sessions, head.total_evictions, head.drift_rows
    );
    // The tenant-scaling curve: one entry per sweep point, in the order
    // requested.
    json.push_str("  \"sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"tenants\": {}, \"total_rows\": {}, \"wall_seconds\": {:.6}, \
             \"sustained_rows_per_sec\": {:.1}, \"latency_us\": {{\"p50\": {}, \"p90\": {}, \
             \"p99\": {}, \"max\": {}}}, \"drift_rows_total\": {}}}{}",
            p.tenants,
            p.total_rows,
            p.wall,
            p.rows_per_sec,
            p.p50,
            p.p90,
            p.p99,
            p.max,
            p.drift_rows,
            if i + 1 == points.len() { "" } else { "," }
        );
    }
    if conn_points.is_empty() {
        json.push_str("  ]\n}\n");
    } else {
        json.push_str("  ],\n");
        // The connection-scaling curve: idle herd + active drivers per
        // point, with the thread bill that served them.
        json.push_str("  \"conn_sweep\": [\n");
        for (i, p) in conn_points.iter().enumerate() {
            let _ = writeln!(
                json,
                "    {{\"conns\": {}, \"idle\": {}, \"active\": {}, \"total_rows\": {}, \
                 \"wall_seconds\": {:.6}, \"sustained_rows_per_sec\": {:.1}, \
                 \"latency_us\": {{\"p50\": {}, \"p99\": {}}}, \"server_threads\": {}, \
                 \"process_threads\": {}}}{}",
                p.conns,
                p.idle,
                p.active,
                p.total_rows,
                p.wall,
                p.rows_per_sec,
                p.p50,
                p.p99,
                p.server_threads,
                p.process_threads,
                if i + 1 == conn_points.len() { "" } else { "," }
            );
        }
        json.push_str("  ]\n}\n");
    }
    std::fs::write(&out_path, &json)
        .map_err(|e| CliError::io(format!("writing {}: {e}", out_path.display())))?;

    println!(
        "  sweep of {} point(s) done; perf record -> {}",
        points.len(),
        out_path.display()
    );
    Ok(())
}

/// Runs one sweep point: a fresh server + registry sized for `tenants`,
/// the keyed tenants loaded, then the measured concurrent-transform phase
/// (optionally with the mid-run restart drill).
fn bench_point(
    tenants: usize,
    keys: &[Vec<u8>],
    rows: usize,
    batches: usize,
    cols: usize,
    restart: bool,
) -> CliResult<BenchPoint> {
    let registry = Arc::new(SessionRegistry::new(tenants));
    let server = Server::spawn("127.0.0.1:0", Arc::clone(&registry), 8)
        .map_err(|e| CliError::io(format!("binding bench server: {e}")))?;
    let addr = server.local_addr();
    // Where the live server is *right now* — updated by the mid-run
    // restart so retrying clients find the replacement.
    let current_addr = Arc::new(Mutex::new(addr));

    let as_client_err = |e: rbt::server::ClientError| CliError {
        code: 4,
        message: format!("bench client: {e}"),
    };
    {
        let mut loader = Client::connect(addr).map_err(as_client_err)?;
        for (t, key) in keys.iter().enumerate() {
            loader
                .load_key(&format!("tenant-{t:02}"), key.clone())
                .map_err(as_client_err)?;
        }
    }

    // With --restart-mid-run, a saboteur thread drains the server under
    // load and brings up a replacement on a fresh port (sharing the
    // registry); the workers' retry/reconnect machinery must carry every
    // batch across the restart for the bench to pass.
    let mut server = Some(server);
    let completed_batches = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let restart_handle = if restart {
        let old = server.take().expect("bench server present");
        let restart_registry = Arc::clone(&registry);
        let addr_slot = Arc::clone(&current_addr);
        let progress = Arc::clone(&completed_batches);
        let quarter = (tenants * batches / 4).max(1);
        Some(std::thread::spawn(move || -> Result<Server, String> {
            // Yank the server once the run is demonstrably under way
            // (a quarter of the batches done), so the restart always
            // lands mid-run no matter how fast the machine is.
            while progress.load(std::sync::atomic::Ordering::Relaxed) < quarter {
                std::thread::sleep(Duration::from_millis(1));
            }
            let replacement = Server::spawn("127.0.0.1:0", restart_registry, 8)
                .map_err(|e| format!("binding replacement server: {e}"))?;
            *addr_slot.lock().unwrap() = replacement.local_addr();
            // Graceful drain: in-flight requests complete, clients get
            // GoingAway, retry, and land on the replacement.
            old.shutdown();
            Ok(replacement)
        }))
    } else {
        None
    };

    // The measured phase: `tenants` concurrent connections, each pushing
    // `batches` transform requests of `rows` rows. Batch values are drawn
    // wider than the fitting data so some rows drift out of range and the
    // drift counters stay honest.
    let started = Instant::now();
    let workers: Vec<_> = (0..tenants)
        .map(|t| {
            let addr_slot = Arc::clone(&current_addr);
            let progress = Arc::clone(&completed_batches);
            std::thread::spawn(move || -> Result<Vec<u64>, String> {
                let tenant = format!("tenant-{t:02}");
                let batch = bench_tenant_data(t + 10_000, rows, cols, 130.0);
                let mut client =
                    Client::connect_via(move || *addr_slot.lock().unwrap(), RetryPolicy::default())
                        .map_err(|e| e.to_string())?;
                let mut latencies_us = Vec::with_capacity(batches);
                for _ in 0..batches {
                    let t0 = Instant::now();
                    let (released, _) = client
                        .transform(&tenant, &batch)
                        .map_err(|e| e.to_string())?;
                    latencies_us.push(t0.elapsed().as_micros() as u64);
                    progress.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if released.n_rows() != batch.n_rows() {
                        return Err(format!("tenant {t}: row count mismatch"));
                    }
                }
                Ok(latencies_us)
            })
        })
        .collect();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(tenants * batches);
    for worker in workers {
        let worker_latencies = worker
            .join()
            .map_err(|_| CliError::io("bench worker panicked"))?
            .map_err(CliError::io)?;
        latencies_us.extend(worker_latencies);
    }
    let wall = started.elapsed().as_secs_f64();

    if let Some(handle) = restart_handle {
        let replacement = handle
            .join()
            .map_err(|_| CliError::io("restart thread panicked"))?
            .map_err(CliError::io)?;
        server = Some(replacement);
    }
    let stats = registry.stats();
    if let Some(server) = server.take() {
        server.shutdown();
    }

    latencies_us.sort_unstable();
    let pct = |q: f64| -> CliResult<u64> {
        percentile(&latencies_us, q).ok_or_else(|| {
            CliError::usage(format!(
                "bench-serve produced no latency samples for {tenants} tenant(s) x {batches} \
                 batch(es); nothing to summarize"
            ))
        })
    };
    let total_rows = tenants * batches * rows;
    Ok(BenchPoint {
        tenants,
        total_rows,
        wall,
        rows_per_sec: total_rows as f64 / wall,
        p50: pct(0.50)?,
        p90: pct(0.90)?,
        p99: pct(0.99)?,
        max: pct(1.0)?,
        drift_rows: stats.tenants.iter().map(|t| t.drift_rows).sum(),
        capacity: stats.capacity,
        live_sessions: stats.live_sessions,
        total_evictions: stats.total_evictions,
    })
}

/// The `q`-quantile of an already-sorted sample set by nearest-rank;
/// `None` when the set is empty (a zero-sample run must surface a typed
/// error, not an index underflow).
fn percentile(sorted: &[u64], q: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    Some(sorted[idx.min(sorted.len() - 1)])
}

/// The soft open-file limit, from `/proc/self/limits` (Linux); `None`
/// where that interface is missing.
fn fd_soft_limit() -> Option<u64> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// Live thread count of this process, from `/proc/self/status` (Linux).
fn process_threads() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("Threads:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The largest concurrent-connection count the open-file budget allows:
/// client and server live in this one process, so each connection costs
/// two descriptors, plus headroom for everything else the process holds.
fn clamp_to_fd_budget(want: usize) -> usize {
    match fd_soft_limit() {
        Some(limit) => want.min((limit.saturating_sub(128) / 2) as usize).max(1),
        None => want,
    }
}

/// One measured point of the connection-scaling sweep.
struct ConnPoint {
    conns: usize,
    active: usize,
    idle: usize,
    total_rows: usize,
    wall: f64,
    rows_per_sec: f64,
    p50: u64,
    p99: u64,
    server_threads: u64,
    process_threads: u64,
}

/// Runs one connection-scaling point: a fresh server holding a herd of
/// `conns` idle connections (each proven live with one `Ping`) while a
/// small active set drives transform batches at full throughput over
/// additional connections — measuring sustained rows/sec and the thread
/// bill with the whole herd still parked on the event loop.
fn bench_conn_point(
    conns: usize,
    keys: &[Vec<u8>],
    rows: usize,
    batches: usize,
    cols: usize,
) -> CliResult<ConnPoint> {
    let idle = conns;
    let active = keys.len().clamp(1, 8);
    let registry = Arc::new(SessionRegistry::new(keys.len().max(1)));
    let config = ServerConfig {
        window: 8,
        max_conns: idle + active + 16,
        ..ServerConfig::default()
    };
    // The thread bill this point claims: the event loop plus the worker
    // pool for the reactor core, two threads per connection (plus the
    // accept loop) for the threaded core.
    let server_threads = match config.core {
        rbt::server::ConnectionCore::Reactor if cfg!(unix) => {
            1 + rbt::linalg::pool::default_threads() as u64
        }
        _ => 1 + 2 * (idle + active) as u64,
    };
    let server = Server::spawn_with("127.0.0.1:0", Arc::clone(&registry), config)
        .map_err(|e| CliError::io(format!("binding bench server: {e}")))?;
    let addr = server.local_addr();
    let as_client_err = |e: rbt::server::ClientError| CliError {
        code: 4,
        message: format!("bench conn client: {e}"),
    };

    {
        let mut loader = Client::connect(addr).map_err(as_client_err)?;
        for (t, key) in keys.iter().take(active).enumerate() {
            loader
                .load_key(&format!("tenant-{t:02}"), key.clone())
                .map_err(as_client_err)?;
        }
    }

    // The idle herd: every connection held open for the whole measured
    // phase, each answered one Ping so "concurrent" means "served", not
    // merely "accepted".
    let mut herd = Vec::with_capacity(idle);
    for _ in 0..idle {
        let mut member = Client::connect(addr).map_err(as_client_err)?;
        member.ping().map_err(as_client_err)?;
        herd.push(member);
    }

    // The measured phase, identical in shape to the tenant sweep: the
    // active set pushes transform batches while the herd stays parked on
    // the same event loop.
    let started = Instant::now();
    let workers: Vec<_> = (0..active)
        .map(|t| {
            std::thread::spawn(move || -> Result<Vec<u64>, String> {
                let tenant = format!("tenant-{t:02}");
                let batch = bench_tenant_data(t + 10_000, rows, cols, 130.0);
                let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                let mut latencies_us = Vec::with_capacity(batches);
                for _ in 0..batches {
                    let t0 = Instant::now();
                    let (released, _) = client
                        .transform(&tenant, &batch)
                        .map_err(|e| e.to_string())?;
                    latencies_us.push(t0.elapsed().as_micros() as u64);
                    if released.n_rows() != batch.n_rows() {
                        return Err(format!("tenant {t}: row count mismatch"));
                    }
                }
                Ok(latencies_us)
            })
        })
        .collect();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(active * batches);
    for worker in workers {
        let worker_latencies = worker
            .join()
            .map_err(|_| CliError::io("bench conn worker panicked"))?
            .map_err(CliError::io)?;
        latencies_us.extend(worker_latencies);
    }
    let wall = started.elapsed().as_secs_f64();
    // Count threads while the whole herd is still connected — this is the
    // number that proves the scaling claim.
    let measured_threads = process_threads().unwrap_or(0);

    let accounting = server.accounting();
    if accounting.live < idle as u64 {
        return Err(CliError::io(format!(
            "connection sweep integrity: expected at least {} live connections, server accounts {}",
            idle, accounting.live
        )));
    }
    drop(herd);
    server.shutdown();

    latencies_us.sort_unstable();
    let pct = |q: f64| -> CliResult<u64> {
        percentile(&latencies_us, q).ok_or_else(|| {
            CliError::usage(format!(
                "connection sweep produced no latency samples for {conns} connection(s)"
            ))
        })
    };
    let total_rows = active * batches * rows;
    Ok(ConnPoint {
        conns: idle + active,
        active,
        idle,
        total_rows,
        wall,
        rows_per_sec: total_rows as f64 / wall,
        p50: pct(0.50)?,
        p99: pct(0.99)?,
        server_threads,
        process_threads: measured_threads,
    })
}

// ---------------------------------------------------------------------------
// Federated release: N owners, one joint clustering, over a running server.

impl From<ProtocolError> for CliError {
    fn from(e: ProtocolError) -> Self {
        let code = match &e {
            ProtocolError::Decode(_) => 4,
            ProtocolError::ShapeMismatch(_) => 5,
            ProtocolError::InvalidConfig(_)
            | ProtocolError::UnknownSession(_)
            | ProtocolError::SessionExists(_)
            | ProtocolError::OwnerOutOfRange { .. }
            | ProtocolError::SessionMismatch { .. } => 2,
            _ => 3,
        };
        CliError {
            code,
            message: format!("federation: {e}"),
        }
    }
}

/// A server call failure keeps its server-assigned code family; transport
/// failures land in the codec/wire family (4).
fn from_client_err(e: ClientError) -> CliError {
    let code = match &e {
        ClientError::Server { code, .. } => *code,
        _ => 4,
    };
    CliError {
        code,
        message: format!("server call: {e}"),
    }
}

fn required_u64(flags: &HashMap<String, String>, name: &str) -> CliResult<u64> {
    required(flags, name)?
        .parse()
        .map_err(|e| CliError::usage(format!("bad --{name}: {e}")))
}

/// Encodes a federation config for the `FedOpen` wire body.
fn encode_fed_config(cfg: &FederationConfig) -> Vec<u8> {
    let mut w = rbt::linalg::codec::ByteWriter::new();
    cfg.encode_into(&mut w);
    w.into_bytes()
}

fn cmd_federate(args: &[String]) -> CliResult<()> {
    let Some((verb, rest)) = args.split_first() else {
        return Err(CliError::usage(
            "federate requires a sub-command: coordinate | join | receive",
        ));
    };
    match verb.as_str() {
        "coordinate" => cmd_federate_coordinate(rest),
        "join" => cmd_federate_join(rest),
        "receive" => cmd_federate_receive(rest),
        other => Err(CliError::usage(format!(
            "unknown federate sub-command {other:?} (coordinate | join | receive)"
        ))),
    }
}

fn cmd_federate_coordinate(args: &[String]) -> CliResult<()> {
    let flags = parse_flags(args, &[])?;
    let addr = required(&flags, "addr")?.to_string();
    let session = required_u64(&flags, "session")?;
    let owners = required_u64(&flags, "owners")? as u16;
    let n_cols = required_u64(&flags, "cols")? as usize;
    let rho = parse_rho(&flags)?;
    let seed = parse_seed(&flags)?;
    let normalization = parse_normalization(&flags)?;
    let kmeans_k = parse_flag_usize(&flags, "k", 3)?;
    let kmeans_max_iters = parse_flag_usize(&flags, "max-iters", 128)?;
    let key_policy = match flags.get("key-policy").map(String::as_str) {
        None | Some("shared") => KeyPolicy::Shared,
        Some("per-owner") => KeyPolicy::PerOwner,
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown key policy {other:?} (shared | per-owner)"
            )))
        }
    };
    let cfg = FederationConfig {
        session,
        n_cols,
        owners,
        normalization,
        rbt: RbtConfig::uniform(PairwiseSecurityThreshold::uniform(rho)?),
        key_policy,
        seed,
        kmeans_k,
        kmeans_max_iters,
    };
    cfg.validate()?;
    let mut client = Client::connect(&addr).map_err(from_client_err)?;
    client
        .fed_open(encode_fed_config(&cfg))
        .map_err(from_client_err)?;
    println!(
        "federated session {session} open on {addr}: {owners} owners x {n_cols} attributes, \
         rho {rho}, seed {seed}"
    );
    println!(
        "each owner now runs: rbt-cli federate join --addr {addr} --session {session} \
         --owner <0..{owners}> --input <csv>"
    );
    println!("then: rbt-cli federate receive --addr {addr} --session {session}");
    Ok(())
}

fn cmd_federate_join(args: &[String]) -> CliResult<()> {
    let flags = parse_flags(args, &[])?;
    let addr = required(&flags, "addr")?.to_string();
    let session = required_u64(&flags, "session")?;
    let owner_id = required_u64(&flags, "owner")? as u16;
    let input = PathBuf::from(required(&flags, "input")?);
    let wait = parse_flag_ms(&flags, "wait-ms", 60_000)?;
    let key_path = flags.get("key").map(PathBuf::from);

    let block = read_csv(&input)?;
    let rows = block.n_rows();
    let mut owner = Owner::new(owner_id, session, block.matrix().clone())?;
    let mut client = Client::connect(&addr).map_err(from_client_err)?;

    // Round-trip polling: deliver whatever the owner produced last turn,
    // feed the drained mailbox back into the state machine, and idle
    // briefly when neither side had anything to say. The budget bounds a
    // session whose other owners never show up.
    let deadline = Instant::now() + wait;
    let mut outbox: Vec<Vec<u8>> = Vec::new();
    while !(owner.is_released() && outbox.is_empty()) {
        if Instant::now() > deadline {
            return Err(CliError::io(format!(
                "federation timed out after {:?} in owner state {} — are all owners joined?",
                wait,
                owner.state_name()
            )));
        }
        let inbound = client
            .fed_exchange(session, owner_id, std::mem::take(&mut outbox))
            .map_err(from_client_err)?;
        if inbound.is_empty() {
            std::thread::sleep(Duration::from_millis(20));
            continue;
        }
        for bytes in inbound {
            let msg = Message::decode(&bytes).map_err(ProtocolError::Decode)?;
            for out in owner.handle(&msg)? {
                debug_assert!(!matches!(out.to, Party::Owner(_)));
                outbox.push(out.msg.encode());
            }
        }
    }

    println!("owner {owner_id} released {rows} rows into session {session}");
    if let Some(key) = owner.key() {
        if let Some(path) = key_path {
            write_file(&path, &key.to_string())?;
            println!("reconstructed transformation key -> {}", path.display());
        } else {
            println!("reconstructed the session transformation key (pass --key to save it)");
        }
    } else if let Some(path) = key_path {
        return Err(CliError::usage(format!(
            "--key {} requested but this key policy keeps no shareable key",
            path.display()
        )));
    }
    Ok(())
}

fn cmd_federate_receive(args: &[String]) -> CliResult<()> {
    let flags = parse_flags(args, &[])?;
    let addr = required(&flags, "addr")?.to_string();
    let session = required_u64(&flags, "session")?;
    let wait = parse_flag_ms(&flags, "wait-ms", 60_000)?;
    let output = flags.get("output").map(PathBuf::from);

    let mut client = Client::connect(&addr).map_err(from_client_err)?;
    let deadline = Instant::now() + wait;
    let summary = loop {
        match client.fed_result(session).map_err(from_client_err)? {
            Some(bytes) => {
                let Message::JointDataset { summary, .. } =
                    Message::decode(&bytes).map_err(ProtocolError::Decode)?
                else {
                    return Err(CliError::io(
                        "server returned a non-JointDataset federation result",
                    ));
                };
                break summary;
            }
            None if Instant::now() > deadline => {
                return Err(CliError::io(format!(
                    "no joint result after {wait:?} — are all owners joined and released?"
                )));
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    };

    let k = summary
        .labels
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m as usize + 1);
    let mut sizes = vec![0usize; k];
    for &l in &summary.labels {
        sizes[l as usize] += 1;
    }
    println!(
        "joint clustering of session {session}: {} rows x {} attributes, {} clusters",
        summary.rows, summary.cols, k
    );
    println!(
        "  inertia {:.6}, {} iterations, converged: {}",
        summary.inertia, summary.iterations, summary.converged
    );
    for (c, size) in sizes.iter().enumerate() {
        println!("  cluster {c}: {size} rows");
    }
    if let Some(path) = output {
        let mut csv_text = String::from("row,cluster\n");
        for (i, l) in summary.labels.iter().enumerate() {
            let _ = writeln!(csv_text, "{i},{l}");
        }
        write_file(&path, &csv_text)?;
        println!("labels -> {}", path.display());
    }
    Ok(())
}
