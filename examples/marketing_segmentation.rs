//! The paper's second motivating scenario, adapted to the centralized
//! setting this paper solves: a retailer shares customer behaviour data
//! with an external analytics firm to find "optimal customer targets",
//! without revealing any customer's actual attribute values.
//!
//! The twist this example demonstrates: the analytics firm returns cluster
//! assignments and centroids computed **in rotated space**; the retailer
//! uses the secret key + fitted normalizer to map those centroids back to
//! raw units (dollars, visits, days) — actionable segments, zero attribute
//! disclosure.
//!
//! Run: `cargo run --release --example marketing_segmentation`

use rand::SeedableRng;
use rbt::cluster::KMeans;
use rbt::core::{Pipeline, RbtConfig};
use rbt::data::rng::standard_normal;
use rbt::data::Dataset;
use rbt::linalg::Matrix;
use rbt::PairwiseSecurityThreshold;

/// Four behavioural segments over
/// (annual_spend, visits_per_month, basket_size, days_since_last).
fn customers(per_segment: usize, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let segments = [
        (250.0, 1.0, 30.0, 45.0),  // occasional small-basket
        (1200.0, 3.5, 80.0, 12.0), // regular mid-spend
        (4800.0, 8.0, 140.0, 4.0), // high-value loyal
        (900.0, 0.5, 400.0, 90.0), // rare bulk buyers
    ];
    let mut rows = Vec::new();
    for &(spend, visits, basket, recency) in &segments {
        for _ in 0..per_segment {
            rows.push(vec![
                (spend + 0.08 * spend * standard_normal(&mut rng)).max(0.0),
                (visits + 0.4 * standard_normal(&mut rng)).max(0.0),
                (basket + 0.1 * basket * standard_normal(&mut rng)).max(1.0),
                (recency + 4.0 * standard_normal(&mut rng)).max(0.0),
            ]);
        }
    }
    Dataset::new(
        Matrix::from_row_iter(rows).unwrap(),
        vec![
            "annual_spend".into(),
            "visits_per_month".into(),
            "basket_size".into(),
            "days_since_last".into(),
        ],
    )
    .unwrap()
}

fn main() {
    let data = customers(100, 21);
    println!(
        "customer base: {} customers x {} behavioural attributes",
        data.n_rows(),
        data.n_cols()
    );

    // Release through the pipeline.
    let pipeline = Pipeline::new(RbtConfig::uniform(
        PairwiseSecurityThreshold::uniform(0.5).unwrap(),
    ));
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let output = pipeline.run(&data, &mut rng).unwrap();

    // The analytics firm segments the released data.
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let result = KMeans::new(4)
        .unwrap()
        .fit(output.released.matrix(), &mut rng)
        .unwrap();
    println!(
        "analytics firm: k-means converged in {} iterations, inertia {:.1}",
        result.iterations, result.inertia
    );

    // The firm returns labels + rotated-space centroids. Only the retailer
    // can decode the centroids: invert the rotations, then the normalizer.
    let decoded = {
        let unrotated = output.key.invert(&result.centroids).unwrap();
        output.normalizer.inverse_transform(&unrotated).unwrap()
    };

    println!("\ndecoded segment centroids (raw units, owner-side only):");
    println!(
        "{:>10} {:>14} {:>18} {:>13} {:>17} {:>6}",
        "segment", "annual_spend", "visits_per_month", "basket_size", "days_since_last", "size"
    );
    for (c, row) in decoded.row_iter().enumerate() {
        let size = result.labels.iter().filter(|&&l| l == c).count();
        println!(
            "{:>10} {:>14.0} {:>18.1} {:>13.0} {:>17.0} {:>6}",
            c, row[0], row[1], row[2], row[3], size
        );
    }

    // Sanity: decoded centroids are genuine means of the raw data per label.
    let mut max_err = 0.0f64;
    for c in 0..4 {
        let members: Vec<usize> = result
            .labels
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| (l == c).then_some(i))
            .collect();
        for j in 0..4 {
            let mean: f64 =
                members.iter().map(|&i| data.matrix()[(i, j)]).sum::<f64>() / members.len() as f64;
            max_err = max_err.max((mean - decoded[(c, j)]).abs() / mean.abs().max(1.0));
        }
    }
    println!("\nmax relative error of decoded centroids vs true raw means: {max_err:.2e}");
    assert!(max_err < 1e-8);
    println!("the analytics firm never saw a single raw attribute value.");
}
