//! How a security administrator picks pairwise-security thresholds.
//!
//! The PST is the paper's only privacy knob, and it has a feasibility
//! ceiling: `Var(A − A')` cannot exceed what the pair's variances and
//! covariance allow. This example shows the owner-side tuning loop:
//!
//! 1. inspect each pair's maximum achievable variances,
//! 2. sweep ρ and watch the security range shrink,
//! 3. pick the largest ρ that keeps every pair feasible with margin,
//! 4. release, then audit **end-to-end** security (per-step thresholds do
//!    not compose when attributes are re-rotated by chaining).
//!
//! Run: `cargo run --release --example threshold_tuning`

use rand::SeedableRng;
use rbt::core::security::{
    end_to_end_security, max_achievable, security_range, PairVarianceProfile, DEFAULT_GRID,
};
use rbt::core::{PairingStrategy, RbtConfig, RbtTransformer};
use rbt::data::synth::GaussianMixture;
use rbt::data::Normalization;
use rbt::{PairwiseSecurityThreshold, VarianceMode};

fn main() {
    // The data to be released: 6 attributes, some strongly correlated.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2025);
    let gm = GaussianMixture::well_separated(3, 6, 9.0, 1.2).unwrap();
    let raw = gm.sample(800, &mut rng).matrix;
    let (_, normalized) = Normalization::zscore_paper().fit_transform(&raw).unwrap();

    // Step 1: feasibility ceiling per sequential pair.
    let pairs = [(0usize, 1usize), (2, 3), (4, 5)];
    println!("feasibility ceilings (max achievable Var over all angles):");
    let mut global_ceiling = f64::INFINITY;
    for &(i, j) in &pairs {
        let profile = PairVarianceProfile::from_columns(
            &normalized.column(i),
            &normalized.column(j),
            VarianceMode::Sample,
        )
        .unwrap();
        let (m1, m2) = max_achievable(&profile, DEFAULT_GRID);
        println!("  pair ({i}, {j}): max Var1 = {m1:.3}, max Var2 = {m2:.3}");
        global_ceiling = global_ceiling.min(m1).min(m2);
    }

    // Step 2: sweep rho and report the tightest pair's range measure.
    println!("\nsecurity-range measure of the tightest pair vs rho:");
    let mut chosen_rho = 0.0;
    for step in 1..=9 {
        let rho = global_ceiling * step as f64 / 10.0;
        let min_measure = pairs
            .iter()
            .map(|&(i, j)| {
                let profile = PairVarianceProfile::from_columns(
                    &normalized.column(i),
                    &normalized.column(j),
                    VarianceMode::Sample,
                )
                .unwrap();
                security_range(
                    &profile,
                    &PairwiseSecurityThreshold::uniform(rho).unwrap(),
                    DEFAULT_GRID,
                )
                .unwrap()
                .measure()
            })
            .fold(f64::INFINITY, f64::min);
        println!("  rho = {rho:.3}: tightest range = {min_measure:6.2}°");
        // Keep at least 30° of slack so the random draw has real entropy.
        if min_measure >= 30.0 {
            chosen_rho = rho;
        }
    }
    println!("\nchosen rho = {chosen_rho:.3} (largest with ≥ 30° of range left)");

    // Step 3: release with the chosen threshold.
    let config = RbtConfig::uniform(PairwiseSecurityThreshold::uniform(chosen_rho).unwrap())
        .with_pairing(PairingStrategy::Explicit(pairs.to_vec()));
    let out = RbtTransformer::new(config)
        .transform(&normalized, &mut rng)
        .unwrap();
    for s in out.key.steps() {
        println!(
            "  released pair ({}, {}) @ {:.2}°: per-step Var = ({:.3}, {:.3})",
            s.i, s.j, s.theta_degrees, s.achieved_var1, s.achieved_var2
        );
    }

    // Step 4: end-to-end audit — the number that actually matters.
    let e2e = end_to_end_security(&normalized, &out.transformed, VarianceMode::Sample).unwrap();
    println!("\nend-to-end Sec per attribute: {:?}", round3(&e2e));
    let min_e2e = e2e.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("minimum end-to-end Sec = {min_e2e:.3} (target: ≥ chosen rho = {chosen_rho:.3})");
    if min_e2e < chosen_rho {
        println!(
            "NOTE: an attribute fell below the per-step threshold end-to-end — \
             this can happen when chaining re-rotates a column; re-draw angles \
             or avoid re-using attributes."
        );
    } else {
        println!("every attribute clears the threshold end-to-end.");
    }
}

fn round3(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}
