//! Streaming release: one fitted session, many batches, persisted secrets.
//!
//! The Figure 1 pipeline is a one-shot release, but a production data
//! owner keeps releasing *new* records under the *same* secrets — an
//! intake system publishing yesterday's admissions every morning. This
//! example walks that lifecycle:
//!
//! 1. **Day 0** — fit the pipeline on the historical data, release it, and
//!    persist the session (key + fitted normalizer + drift bounds) to a
//!    checksummed key file.
//! 2. **Days 1..3** — reload the session from the key file and transform
//!    each day's arrivals. The released batches are bit-identical to what
//!    a one-shot release of the concatenated data would have produced, so
//!    the analyst's distances (and therefore clusters) are consistent
//!    across days.
//! 3. **Drift** — day 3's intake shifts distribution; the session's drift
//!    counter flags records outside the fitted normalization range.
//! 4. **Recovery** — the owner inverts a released batch back to raw values
//!    with the same session.
//!
//! Run: `cargo run --release --example streaming_release`

use rand::SeedableRng;
use rbt::core::isometry::dissimilarity_drift;
use rbt::core::{Pipeline, RbtConfig, ReleaseSession};
use rbt::data::synth::GaussianMixture;
use rbt::data::Dataset;
use rbt::PairwiseSecurityThreshold;

fn main() {
    let mixture = GaussianMixture::well_separated(3, 4, 8.0, 1.0).expect("valid mixture spec");
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // ---- Day 0: fit on the historical data and persist the session. ----
    let history = Dataset::from_matrix(mixture.sample(400, &mut rng).matrix);
    let pipeline = Pipeline::new(RbtConfig::uniform(
        PairwiseSecurityThreshold::uniform(0.3).expect("valid threshold"),
    ));
    let fit = pipeline.run(&history, &mut rng).expect("release succeeds");
    let session = ReleaseSession::from_pipeline_output(&fit).expect("secrets are consistent");

    let key_file = std::env::temp_dir().join("rbt-streaming-example.session");
    std::fs::write(&key_file, session.to_text().expect("encodable session"))
        .expect("key file written");
    println!(
        "day 0: released {} historical rows; session persisted to {}",
        fit.released.n_rows(),
        key_file.display()
    );

    // ---- Days 1..3: reload the session and release the arrivals. ----
    let key_bytes = std::fs::read(&key_file).expect("key file readable");
    let mut session = ReleaseSession::decode(&key_bytes).expect("key file intact");
    println!(
        "reloaded session: {} attributes, {} rotation steps, drift bounds attached: {}",
        session.key().n_attributes(),
        session.key().steps().len(),
        session.drift_bounds().is_some()
    );

    for day in 1..=3 {
        // Day 3's intake drifts: the instrument recalibrates and every
        // reading shifts by several fitted standard deviations.
        let mut arrivals = mixture.sample(150, &mut rng).matrix;
        if day == 3 {
            arrivals = arrivals.map(|v| v + 25.0);
        }
        let arrivals = Dataset::from_matrix(arrivals);

        let batch = session
            .transform_batch(&arrivals)
            .expect("batch matches the fitted layout");
        // The released batch is still an isometric image of its
        // normalized form: distances survive, values do not.
        let normalized = session
            .normalizer()
            .transform(arrivals.matrix())
            .expect("same layout");
        println!(
            "day {day}: released {} rows, drift {}/{} rows outside fitted range, \
             distance drift {:.2e}",
            batch.released.n_rows(),
            batch.out_of_range_rows,
            arrivals.n_rows(),
            dissimilarity_drift(&normalized, batch.released.matrix()),
        );

        // ---- Owner-side recovery of a released batch. ----
        if day == 1 {
            let recovered = session
                .invert_batch(&batch.released)
                .expect("same session inverts");
            let max_err = recovered
                .matrix()
                .max_abs_diff(arrivals.matrix())
                .expect("same shape");
            println!("day {day}: inverted release recovers raw values (max err {max_err:.2e})");
        }
    }

    println!(
        "session lifetime: {} records seen, {} outside the fitted range",
        session.records_seen(),
        session.records_out_of_range()
    );
    std::fs::remove_file(&key_file).ok();
}
