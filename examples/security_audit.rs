//! A security audit of an RBT release — both sides of the story.
//!
//! First the attack the paper analyses (§5.2): re-normalizing the release.
//! It fails, as the paper claims. Then the attacks the later literature
//! brought to bear: a known-sample least-squares attack and a PCA
//! covariance-alignment attack. Both succeed, which is why rotation
//! perturbation was ultimately superseded — run this example before
//! trusting RBT with real data.
//!
//! Run: `cargo run --release --example security_audit`

use rand::SeedableRng;
use rbt::attack::known_sample::known_sample_attack;
use rbt::attack::pca::{pca_attack, SignResolution};
use rbt::attack::reconstruction::evaluate;
use rbt::attack::renormalize::renormalization_attack;
use rbt::core::{Pipeline, RbtConfig};
use rbt::data::rng::standard_normal;
use rbt::data::Dataset;
use rbt::linalg::Matrix;
use rbt::PairwiseSecurityThreshold;

/// A correlated, skewed population of 5 attributes — the realistic case.
fn sensitive_data(rows: usize, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut data = Vec::new();
    for _ in 0..rows {
        let wealth = standard_normal(&mut rng);
        let g1 = standard_normal(&mut rng);
        let g2 = standard_normal(&mut rng);
        let g3 = standard_normal(&mut rng);
        let g4 = standard_normal(&mut rng);
        data.push(vec![
            45.0 + 12.0 * (0.8 * wealth + g1) + 2.0 * g1 * g1, // age-ish, skewed
            60_000.0 * (1.0 + 0.5 * wealth + 0.2 * g2).max(0.1), // income
            2.0 + 1.2 * wealth + 0.4 * g3,                     // dependents-ish
            120.0 + 15.0 * (0.3 * wealth + g4) + 3.0 * g4 * g4, // blood pressure
            (20_000.0 * (0.6 * wealth + 0.4 * g2 + 1.5)).max(0.0), // debt
        ]);
    }
    Dataset::new(
        Matrix::from_row_iter(data).unwrap(),
        vec![
            "age".into(),
            "income".into(),
            "dependents".into(),
            "blood_pressure".into(),
            "debt".into(),
        ],
    )
    .unwrap()
}

fn main() {
    let data = sensitive_data(2_000, 404);
    let pipeline = Pipeline::new(RbtConfig::uniform(
        PairwiseSecurityThreshold::uniform(0.5).unwrap(),
    ));
    let mut rng = rand::rngs::StdRng::seed_from_u64(808);
    let output = pipeline.run(&data, &mut rng).unwrap();
    let normalized = output.normalized.matrix();
    let released = output.released.matrix();
    println!(
        "release: {} rows x {} attributes, {} rotations applied\n",
        released.rows(),
        released.cols(),
        output.key.steps().len()
    );

    println!("--- attack 1: re-normalization (the paper's §5.2 analysis) ---");
    let report = renormalization_attack(released, Some(normalized)).unwrap();
    println!(
        "  distance drift caused: {:.3} (utility destroyed)",
        report.drift_vs_released
    );
    println!(
        "  reconstruction error:  {:.3} (nowhere near the original)",
        report.error_vs_original.unwrap()
    );
    println!("  verdict: FAILS, exactly as the paper claims.\n");

    println!("--- attack 2: known-sample least squares (5 leaked records) ---");
    let idx: Vec<usize> = (0..5).collect();
    let known_o = normalized.select_rows(&idx).unwrap();
    let known_r = released.select_rows(&idx).unwrap();
    let outcome = known_sample_attack(&known_o, &known_r, released).unwrap();
    let rep = evaluate(normalized, &outcome.reconstructed, 0.05).unwrap();
    println!(
        "  cells recovered within 0.05 sd: {:.1}% (RMSE {:.2e})",
        100.0 * rep.fraction_recovered,
        rep.rmse
    );
    println!("  verdict: SUCCEEDS — 0.25% of the table leaks everything.\n");

    println!("--- attack 3: PCA alignment (distribution knowledge only) ---");
    // The attacker samples the same population independently (e.g. a public
    // survey of the same demographic) and normalizes it the standard way.
    let attacker_prior = sensitive_data(2_000, 909);
    let (_, prior_normalized) = rbt::data::Normalization::zscore_paper()
        .fit_transform(attacker_prior.matrix())
        .unwrap();
    match pca_attack(&prior_normalized, released, SignResolution::Skewness) {
        Ok(outcome) => {
            let rep = evaluate(normalized, &outcome.reconstructed, 0.25).unwrap();
            println!(
                "  cells recovered within 0.25 sd: {:.1}% (RMSE {:.3})",
                100.0 * rep.fraction_recovered,
                rep.rmse
            );
            println!(
                "  spectral gap: {:.2e} (attack well-conditioned)",
                outcome.min_spectral_gap
            );
            println!("  verdict: SUCCEEDS without a single known record.\n");
        }
        Err(e) => println!("  attack not applicable here: {e}\n"),
    }

    println!(
        "conclusion: RBT preserves clustering exactly and resists naive \
         attacks, but a known-sample or distributional adversary defeats it. \
         Treat it as obfuscation (the paper's own §5.2 framing), not as a \
         modern privacy guarantee."
    );
}
