//! Quickstart: the paper's Figure 1 pipeline in ~40 lines.
//!
//! A hospital wants to share patient data for clustering without revealing
//! attribute values. Steps: normalize → rotate attribute pairs under
//! security thresholds → release. Any distance-based clustering algorithm
//! then finds the *same* clusters on the release as on the original.
//!
//! Run: `cargo run --release --example quickstart`

use rand::SeedableRng;
use rbt::cluster::{KMeans, KMeansInit};
use rbt::core::isometry::dissimilarity_drift;
use rbt::core::{Pipeline, RbtConfig};
use rbt::data::datasets;
use rbt::PairwiseSecurityThreshold;

fn main() {
    // The paper's running example: 5 cardiac-arrhythmia records (Table 1).
    let patients = datasets::arrhythmia_sample();
    println!("Raw data (confidential):\n{patients}");

    // Configure RBT: every attribute pair must be distorted with
    // Var(A - A') >= 0.3 — the owner's privacy knob.
    let config = RbtConfig::uniform(PairwiseSecurityThreshold::uniform(0.3).unwrap());
    let pipeline = Pipeline::new(config);

    // Release. The RNG seed is part of the owner's secret state.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let output = pipeline.run(&patients, &mut rng).unwrap();
    println!(
        "Released data (IDs suppressed, values rotated):\n{}",
        output.released
    );

    // The owner keeps the key; it can invert the release.
    println!("Owner-side key:\n{}", output.key);

    // The miner clusters the released data; the owner can check the result
    // is exactly what clustering the original would give.
    let k = 2;
    let km = KMeans::new(k).unwrap().with_init(KMeansInit::FirstK);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let on_release = km.fit(output.released.matrix(), &mut rng).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let on_original = km.fit(output.normalized.matrix(), &mut rng).unwrap();

    println!("clusters on the release:  {:?}", on_release.labels);
    println!("clusters on the original: {:?}", on_original.labels);
    assert_eq!(on_release.labels, on_original.labels, "Corollary 1");

    // Why it works: the transformation is an isometry (Theorem 2).
    let drift = dissimilarity_drift(output.normalized.matrix(), output.released.matrix());
    println!("max distance drift: {drift:.2e} (zero up to float rounding)");
}
