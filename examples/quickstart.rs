//! Quickstart: the paper's Figure 1 pipeline through the release API.
//!
//! A hospital wants to share patient data for clustering without revealing
//! attribute values. Steps: normalize → rotate attribute pairs under
//! security thresholds → release. Any distance-based clustering algorithm
//! then finds the *same* clusters on the release as on the original.
//!
//! The blessed entry point is the typed-state `Release` builder from
//! `rbt::prelude` — pick a method from the registry, set the privacy knob,
//! fit. (`Pipeline`/`ReleaseSession` remain available underneath; the
//! builder wraps them bit-identically.)
//!
//! Run: `cargo run --release --example quickstart`

use rand::SeedableRng;
use rbt::cluster::{KMeans, KMeansInit};
use rbt::core::isometry::dissimilarity_drift;
use rbt::prelude::*;

fn main() {
    // The paper's running example: 5 cardiac-arrhythmia records (Table 1).
    let patients = rbt::data::datasets::arrhythmia_sample();
    println!("Raw data (confidential):\n{patients}");

    // Release via RBT: every attribute pair must be distorted with
    // Var(A - A') >= 0.3 — the owner's privacy knob. The RNG seed is part
    // of the owner's secret state.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let mut fitted = Release::of(&patients)
        .with_method(Method::Rbt)
        .with_thresholds(PairwiseSecurityThreshold::uniform(0.3).unwrap())
        .fit(&mut rng)
        .expect("0.3 is feasible for this data");
    println!(
        "Released data (IDs suppressed, values rotated):\n{}",
        fitted.released()
    );
    println!("Method {:?}: {}", fitted.method_name(), fitted.properties());

    // The owner keeps the fitted state; it transforms tomorrow's batch
    // under the same secrets and can invert any release.
    let tomorrow = fitted
        .transform_batch(&patients)
        .expect("same column layout");
    let recovered = fitted.invert_batch(&tomorrow).expect("rbt is invertible");
    assert!(recovered.matrix().approx_eq(patients.matrix(), 1e-8));

    // The miner clusters the released data; the owner can check the result
    // is exactly what clustering the original would give (Corollary 1).
    let normalized = Normalization::zscore_paper()
        .fit_transform(patients.matrix())
        .unwrap()
        .1;
    let k = 2;
    let km = KMeans::new(k).unwrap().with_init(KMeansInit::FirstK);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let on_release = km.fit(fitted.released().matrix(), &mut rng).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let on_original = km.fit(&normalized, &mut rng).unwrap();

    println!("clusters on the release:  {:?}", on_release.labels);
    println!("clusters on the original: {:?}", on_original.labels);
    assert_eq!(on_release.labels, on_original.labels, "Corollary 1");

    // Why it works: the transformation is an isometry (Theorem 2).
    let drift = dissimilarity_drift(&normalized, fitted.released().matrix());
    println!("max distance drift: {drift:.2e} (zero up to float rounding)");

    // The same boundary serves every registered method — swap the name,
    // keep the code. Baselines trade the isometry away:
    let noisy = Release::of(&patients)
        .with_method(Method::Noise)
        .fit(&mut rand::rngs::StdRng::seed_from_u64(1))
        .unwrap();
    println!(
        "baseline {:?}: {} (clusters may differ!)",
        noisy.method_name(),
        noisy.properties()
    );
}
