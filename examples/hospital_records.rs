//! The paper's first motivating scenario: a hospital shares patient data
//! for research ("group patients who have a similar disease") without
//! revealing attribute values.
//!
//! This example builds a synthetic cohort with three latent condition
//! groups, releases it through the RBT pipeline with *per-pair* security
//! thresholds chosen by the security administrator, writes the release to
//! CSV (what actually leaves the hospital), and shows that hierarchical
//! clustering on the CSV recovers the same patient groups the hospital
//! would find internally.
//!
//! Run: `cargo run --release --example hospital_records`

use rand::SeedableRng;
use rbt::cluster::metrics::{misclassification_error, same_partition};
use rbt::cluster::{Agglomerative, Linkage};
use rbt::core::{PairingStrategy, Pipeline, RbtConfig, ThresholdPolicy};
use rbt::data::rng::standard_normal;
use rbt::data::{csv, Dataset};
use rbt::linalg::dissimilarity::DissimilarityMatrix;
use rbt::linalg::distance::Metric;
use rbt::linalg::Matrix;
use rbt::PairwiseSecurityThreshold;

/// Three synthetic condition groups over (age, bmi, heart_rate, systolic_bp).
fn synthetic_cohort(per_group: usize, seed: u64) -> (Dataset, Vec<usize>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // (mean age, mean bmi, mean hr, mean bp) per condition group.
    let groups = [
        (35.0, 22.0, 62.0, 115.0),
        (58.0, 31.0, 78.0, 142.0),
        (72.0, 26.0, 88.0, 160.0),
    ];
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    let mut ids = Vec::new();
    for (g, &(age, bmi, hr, bp)) in groups.iter().enumerate() {
        for i in 0..per_group {
            rows.push(vec![
                age + 3.0 * standard_normal(&mut rng),
                bmi + 1.5 * standard_normal(&mut rng),
                hr + 4.0 * standard_normal(&mut rng),
                bp + 5.0 * standard_normal(&mut rng),
            ]);
            labels.push(g);
            ids.push((1000 + g * per_group + i) as u64);
        }
    }
    let matrix = Matrix::from_row_iter(rows).unwrap();
    let ds = Dataset::new(
        matrix,
        vec![
            "age".into(),
            "bmi".into(),
            "heart_rate".into(),
            "systolic_bp".into(),
        ],
    )
    .unwrap()
    .with_ids(ids)
    .unwrap();
    (ds, labels)
}

fn main() {
    let (cohort, truth) = synthetic_cohort(60, 7);
    println!(
        "cohort: {} patients x {} clinical attributes",
        cohort.n_rows(),
        cohort.n_cols()
    );

    // The security administrator pairs correlated vitals deliberately and
    // demands more distortion on the sensitive (age, bp) pair.
    let config = RbtConfig::uniform(PairwiseSecurityThreshold::uniform(0.3).unwrap())
        .with_pairing(PairingStrategy::Explicit(vec![(0, 3), (1, 2)]))
        .with_thresholds(ThresholdPolicy::PerPair(vec![
            PairwiseSecurityThreshold::new(0.8, 0.8).unwrap(), // age, systolic_bp
            PairwiseSecurityThreshold::new(0.3, 0.3).unwrap(), // bmi, heart_rate
        ]));

    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let output = Pipeline::new(config).run(&cohort, &mut rng).unwrap();
    for step in output.key.steps() {
        println!(
            "  administered rotation: pair ({}, {}) by {:.2}° (Var {:.3} / {:.3})",
            step.i, step.j, step.theta_degrees, step.achieved_var1, step.achieved_var2
        );
    }

    // The release leaves the hospital as a CSV with no IDs.
    let path = std::env::temp_dir().join("hospital_release.csv");
    csv::write_file(&output.released, &path).unwrap();
    println!(
        "release written to {} (no IDs, rotated values)",
        path.display()
    );

    // The research lab (miner) reads the CSV and clusters hierarchically.
    let received = csv::read_file(&path).unwrap();
    let threads = rbt::linalg::pool::default_threads();
    let dm =
        DissimilarityMatrix::from_matrix_parallel(received.matrix(), Metric::Euclidean, threads);
    let dendrogram = Agglomerative::new(Linkage::Ward).fit(&dm).unwrap();
    let lab_clusters = dendrogram.cut(3).unwrap();

    // The hospital checks: the lab found exactly the groups an internal
    // analysis of the un-released data would find.
    let internal_dm = DissimilarityMatrix::from_matrix_parallel(
        output.normalized.matrix(),
        Metric::Euclidean,
        threads,
    );
    let internal_clusters = Agglomerative::new(Linkage::Ward)
        .fit(&internal_dm)
        .unwrap()
        .cut(3)
        .unwrap();
    assert!(same_partition(&lab_clusters, &internal_clusters));
    println!("lab clustering == internal clustering: true (Corollary 1)");

    let err = misclassification_error(&truth, &lab_clusters).unwrap();
    println!(
        "misclassification vs latent condition groups: {:.1}%",
        100.0 * err
    );

    std::fs::remove_file(&path).ok();
}
