//! Vendored stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to the crates.io
//! registry, so the workspace vendors the *subset* of the `rand` 0.9 API its
//! code actually uses: the [`RngCore`] / [`Rng`] / [`RngExt`] /
//! [`SeedableRng`] traits, a deterministic [`rngs::StdRng`] (xoshiro256++
//! seeded via SplitMix64), the [`rng()`] convenience constructor, and
//! [`seq::SliceRandom::shuffle`]. As in the real crate, [`RngCore`] is the
//! dyn-compatible raw source (`&mut dyn RngCore` works as a trait object)
//! and [`Rng`] is blanket-implemented on top of it with the generic sampling
//! helpers.
//!
//! Determinism contract: `StdRng::seed_from_u64(s)` yields an identical
//! stream on every platform and every run — all experiment seeds in the
//! workspace rely on this.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A raw source of randomness: a stream of uniformly distributed `u64`s.
///
/// This trait is **dyn-compatible** — APIs that must stay object-safe (the
/// `PrivacyTransform` release layer, for instance) take `&mut dyn RngCore`
/// and still reach every generic [`Rng`] helper through the blanket
/// implementation.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit value from the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Generic sampling helpers over any [`RngCore`], blanket-implemented so
/// every raw source (including `&mut dyn RngCore`) gets them for free.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (full range for integers, `[0, 1)` for floats, fair coin for `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open `lo..hi` or inclusive
    /// `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Extension marker for [`Rng`]; implemented for every `Rng` so bounds like
/// `R: Rng + RngExt` (mirroring `rand` 0.9's split between `RngCore` and
/// `Rng`) resolve against the shim as well.
pub trait RngExt: Rng {}

impl<R: Rng + ?Sized> RngExt for R {}

/// A random number generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a canonical "standard" distribution for [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from the half-open interval `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from the closed interval `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Uniform draw from `[0, n)` by rejection, avoiding modulo bias.
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Discard the `2^64 mod n` lowest raw values so every residue is
    // equally likely.
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        if x >= threshold {
            return x % n;
        }
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                lo + uniform_u64_below(rng, (hi - lo) as u64) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let u: $t = Standard::sample_standard(rng); // [0, 1)
                let v = lo + u * (hi - lo);
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let u: $t = Standard::sample_standard(rng);
                // Stretch [0, 1) to cover the closed interval.
                let v = lo + u / (1.0 - <$t>::EPSILON) * (hi - lo);
                if v > hi { hi } else { v }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range shapes accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from `self`.
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, RngCore, SampleRange, SampleUniform, SeedableRng, Standard};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded from a `u64` via SplitMix64 state expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Inherent mirror of [`Rng::random`], so callers holding a concrete
        /// `StdRng` need no trait import.
        pub fn random<T: Standard>(&mut self) -> T {
            Rng::random(self)
        }

        /// Inherent mirror of [`Rng::random_range`].
        pub fn random_range<T, R>(&mut self, range: R) -> T
        where
            T: SampleUniform,
            R: SampleRange<T>,
        {
            Rng::random_range(self, range)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64: the recommended way to expand a 64-bit seed into
            // xoshiro state (never all-zero).
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Returns a non-deterministic generator seeded from the system clock.
///
/// For reproducible experiments prefer `StdRng::seed_from_u64`; this exists
/// for "just give me a fresh seed" call sites such as the CLI default.
pub fn rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED_CAFE);
    // Fold in a per-process counter so two calls in the same nanosecond
    // still diverge.
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let salt = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::StdRng::seed_from_u64(nanos ^ salt.rotate_left(32))
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait for slices: random shuffling.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates), uniformly over
        /// permutations.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_answer_is_stable() {
        // Pin the stream so refactors cannot silently change every
        // experiment seed in the workspace.
        let mut r = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180
            ]
        );
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let y: f64 = r.random_range(0.0..=360.0);
            assert!((0.0..=360.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn dyn_rng_core_reaches_generic_helpers() {
        // The raw source works as a trait object, and the blanket `Rng`
        // impl gives the object every generic sampling helper.
        let mut concrete = StdRng::seed_from_u64(11);
        let erased: &mut dyn RngCore = &mut concrete;
        let x: f64 = erased.random_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let _coin: bool = erased.random();
        // Identical stream to the un-erased generator.
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let dyn_b: &mut dyn RngCore = &mut b;
        for _ in 0..16 {
            assert_eq!(a.next_u64(), dyn_b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
