//! Vendored stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness (the build environment has no registry access).
//!
//! It reproduces the subset of criterion's surface the workspace benches
//! use — [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — on top of a simple
//! wall-clock timer: a short warm-up, then a fixed measurement window, then
//! a mean-per-iteration report on stdout. It has none of criterion's
//! statistics (no outlier analysis, no HTML reports); it exists so
//! `cargo bench` runs and regressions stay *visible*, not
//! publication-grade.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings shared by all benches in a run.
#[derive(Debug, Clone)]
pub struct Criterion {
    /// Target number of timed iterations per benchmark (upper bound; the
    /// time cap below usually binds first for slow benches).
    sample_size: usize,
    /// Wall-clock cap on the measurement phase of one benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the target iteration count per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the wall-clock cap per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Records the per-iteration workload size, reported as a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        let mut c = self.effective();
        run_one(&mut c, &label, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark that borrows a shared input.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        let mut c = self.effective();
        run_one(&mut c, &label, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; settings are per-call).
    pub fn finish(self) {}

    fn effective(&self) -> Criterion {
        let mut c = self.criterion.clone();
        if let Some(n) = self.sample_size {
            c.sample_size = n;
        }
        c
    }
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with both a name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a printable benchmark id (strings or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Per-iteration workload size, used to report a rate next to the time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// The timing callback handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Mean seconds per iteration, filled in by [`Bencher::iter`].
    mean_secs: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, storing the mean wall-clock cost per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: a few calls so lazy initialisation and cache effects do
        // not dominate the first timed sample.
        let warmup = (self.sample_size / 10).clamp(1, 10);
        for _ in 0..warmup {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters: u64 = 0;
        while iters < self.sample_size as u64 {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.mean_secs = start.elapsed().as_secs_f64() / iters as f64;
        self.iters = iters;
    }
}

fn run_one<F>(c: &mut Criterion, label: &str, throughput: Option<Throughput>, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        sample_size: c.sample_size,
        measurement_time: c.measurement_time,
        mean_secs: f64::NAN,
        iters: 0,
    };
    f(&mut b);
    assert!(
        b.iters > 0,
        "benchmark {label:?} never called Bencher::iter — nothing was measured"
    );
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.3e} elem/s)", n as f64 / b.mean_secs)
        }
        Some(Throughput::Bytes(n)) => format!("  ({:.3e} B/s)", n as f64 / b.mean_secs),
        None => String::new(),
    };
    println!(
        "bench {label:<48} {:>12}  [{} iters]{rate}",
        human_time(b.mean_secs),
        b.iters
    );
}

fn human_time(secs: f64) -> String {
    if !secs.is_finite() {
        "n/a".to_string()
    } else if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a bench group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_finite_time() {
        let mut c = Criterion::default();
        c.sample_size(5).measurement_time(Duration::from_millis(10));
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        c.sample_size(5).measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.sample_size(3)
            .throughput(Throughput::Elements(10))
            .bench_with_input(BenchmarkId::new("x", 1), &3u64, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
        g.finish();
    }
}
