//! Vendored stand-in for the [`polling`](https://crates.io/crates/polling)
//! crate (the build environment has no registry access).
//!
//! Only the API this workspace uses is provided: a level-triggered
//! [`Poller`] multiplexing readiness over raw file descriptors, backed by
//! the POSIX `poll(2)` system call via a thin `extern "C"` declaration (no
//! `libc` dependency). The server workspace forbids `unsafe` code, so the
//! single `unsafe` FFI call lives here, behind a safe interface.
//!
//! On non-Unix targets every constructor returns
//! [`std::io::ErrorKind::Unsupported`]; callers are expected to fall back
//! to a thread-per-connection core there.

#![deny(missing_docs)]

use std::fmt;
use std::time::Duration;

/// Readiness interest for a registered descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor becomes readable (or hits EOF/error).
    pub readable: bool,
    /// Wake when the descriptor becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Interest in readability only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Interest in writability only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Interest in both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// No interest — the descriptor stays registered but never wakes the
    /// poller (errors/hangups are still reported, as `poll(2)` mandates).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// A readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The caller-chosen key passed to [`Poller::register`].
    pub key: usize,
    /// The descriptor is readable, at EOF, or in an error state.
    pub readable: bool,
    /// The descriptor is writable or in an error state.
    pub writable: bool,
}

#[cfg(unix)]
mod sys {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::time::{Duration, Instant};

    // `struct pollfd` from <poll.h>. The short flag values below are
    // identical across Linux, the BSDs, and macOS.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    // nfds_t is `unsigned long` on Linux/Android (so 32-bit on 32-bit
    // targets) and `unsigned int` on the BSD family (including macOS).
    #[cfg(any(target_os = "linux", target_os = "android"))]
    type NFds = core::ffi::c_ulong;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    type NFds = core::ffi::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: i32) -> i32;
    }

    fn interest_to_events(interest: Interest) -> i16 {
        let mut ev = 0;
        if interest.readable {
            ev |= POLLIN;
        }
        if interest.writable {
            ev |= POLLOUT;
        }
        ev
    }

    /// Dense `pollfd` array plus a key→slot map; removal is `swap_remove`
    /// so both stay O(1) per operation and the array stays contiguous for
    /// the kernel.
    pub struct Poller {
        fds: Vec<PollFd>,
        keys: Vec<usize>,
        slots: HashMap<usize, usize>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Vec::new(),
                keys: Vec::new(),
                slots: HashMap::new(),
            })
        }

        pub fn register(&mut self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            if self.slots.contains_key(&key) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("key {key} already registered"),
                ));
            }
            self.slots.insert(key, self.fds.len());
            self.fds.push(PollFd {
                fd,
                events: interest_to_events(interest),
                revents: 0,
            });
            self.keys.push(key);
            Ok(())
        }

        pub fn modify(&mut self, key: usize, interest: Interest) -> io::Result<()> {
            let slot = *self.slots.get(&key).ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("key {key} not registered"))
            })?;
            self.fds[slot].events = interest_to_events(interest);
            Ok(())
        }

        pub fn deregister(&mut self, key: usize) -> io::Result<()> {
            let slot = self.slots.remove(&key).ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("key {key} not registered"))
            })?;
            self.fds.swap_remove(slot);
            self.keys.swap_remove(slot);
            if slot < self.fds.len() {
                self.slots.insert(self.keys[slot], slot);
            }
            Ok(())
        }

        pub fn len(&self) -> usize {
            self.fds.len()
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let deadline = timeout.map(|t| Instant::now() + t);
            loop {
                let millis = match deadline {
                    None => -1,
                    Some(d) => {
                        let left = d.saturating_duration_since(Instant::now());
                        // Round up so sub-millisecond remainders park in the
                        // kernel instead of spinning.
                        i32::try_from(left.as_millis())
                            .unwrap_or(i32::MAX)
                            .max(if left.is_zero() { 0 } else { 1 })
                    }
                };
                // SAFETY: `fds` is a live, contiguous `#[repr(C)]` array and
                // `len` matches it; `poll` only writes the `revents` fields.
                let rc = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as NFds, millis) };
                if rc < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(err);
                }
                if rc == 0 && millis != 0 && deadline.is_some_and(|d| Instant::now() < d) {
                    // Spurious early return; keep waiting out the budget.
                    continue;
                }
                for (pfd, &key) in self.fds.iter().zip(&self.keys) {
                    let re = pfd.revents;
                    if re == 0 {
                        continue;
                    }
                    // Error/hangup conditions are surfaced as ready in both
                    // directions so the caller's next read/write observes the
                    // failure directly.
                    let broken = re & (POLLERR | POLLHUP | POLLNVAL) != 0;
                    events.push(Event {
                        key,
                        readable: re & POLLIN != 0 || broken,
                        writable: re & POLLOUT != 0 || broken,
                    });
                }
                return Ok(events.len());
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::time::Duration;

    /// Raw descriptor type on targets without `std::os::fd`.
    pub type RawFd = i32;

    /// Stub poller: construction fails with `Unsupported`.
    pub struct Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "poll(2) readiness shim is only available on Unix targets",
            ))
        }

        pub fn register(&mut self, _fd: RawFd, _key: usize, _i: Interest) -> io::Result<()> {
            unreachable!("stub Poller cannot be constructed")
        }

        pub fn modify(&mut self, _key: usize, _i: Interest) -> io::Result<()> {
            unreachable!("stub Poller cannot be constructed")
        }

        pub fn deregister(&mut self, _key: usize) -> io::Result<()> {
            unreachable!("stub Poller cannot be constructed")
        }

        pub fn len(&self) -> usize {
            0
        }

        pub fn wait(&mut self, _ev: &mut Vec<Event>, _t: Option<Duration>) -> io::Result<usize> {
            unreachable!("stub Poller cannot be constructed")
        }
    }
}

#[cfg(unix)]
pub use std::os::fd::RawFd;
#[cfg(not(unix))]
pub use sys::RawFd;

/// A level-triggered readiness poller over raw file descriptors.
///
/// Register descriptors under caller-chosen `usize` keys, then call
/// [`Poller::wait`] to block until at least one registered descriptor
/// matches its [`Interest`] (or the timeout lapses). Level-triggered
/// semantics: a descriptor that stays ready is reported on every wait, so
/// callers never need to drain-to-`WouldBlock` to re-arm.
pub struct Poller(sys::Poller);

impl fmt::Debug for Poller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Poller")
            .field("registered", &self.0.len())
            .finish()
    }
}

impl Poller {
    /// Creates an empty poller.
    ///
    /// # Errors
    /// [`std::io::ErrorKind::Unsupported`] on non-Unix targets.
    pub fn new() -> std::io::Result<Poller> {
        sys::Poller::new().map(Poller)
    }

    /// Registers `fd` under `key` with the given interest.
    ///
    /// The caller keeps ownership of the descriptor and must keep it open
    /// until [`Poller::deregister`]; the poller never closes descriptors.
    ///
    /// # Errors
    /// [`std::io::ErrorKind::AlreadyExists`] if `key` is already registered.
    pub fn register(&mut self, fd: RawFd, key: usize, interest: Interest) -> std::io::Result<()> {
        self.0.register(fd, key, interest)
    }

    /// Replaces the interest set for an already-registered `key`.
    ///
    /// # Errors
    /// [`std::io::ErrorKind::NotFound`] if `key` is not registered.
    pub fn modify(&mut self, key: usize, interest: Interest) -> std::io::Result<()> {
        self.0.modify(key, interest)
    }

    /// Removes `key` from the poll set. The descriptor itself is untouched.
    ///
    /// # Errors
    /// [`std::io::ErrorKind::NotFound`] if `key` is not registered.
    pub fn deregister(&mut self, key: usize) -> std::io::Result<()> {
        self.0.deregister(key)
    }

    /// Number of currently registered descriptors.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no descriptors are registered.
    pub fn is_empty(&self) -> bool {
        self.0.len() == 0
    }

    /// Blocks until a registered descriptor is ready or `timeout` lapses.
    ///
    /// `events` is cleared and refilled; the return value is the number of
    /// ready descriptors (0 on timeout). `None` waits indefinitely.
    /// `EINTR` is retried internally with the remaining budget.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> std::io::Result<usize> {
        self.0.wait(events, timeout)
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::{Duration, Instant};

    fn pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn readable_event_fires_after_write() {
        let (a, mut b) = pair();
        let mut poller = Poller::new().unwrap();
        poller
            .register(a.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();

        let mut events = Vec::new();
        // Nothing written yet: a short wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        b.write_all(b"x").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn level_triggered_until_drained() {
        let (mut a, mut b) = pair();
        let mut poller = Poller::new().unwrap();
        poller
            .register(a.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();
        b.write_all(b"yz").unwrap();

        let mut events = Vec::new();
        for _ in 0..2 {
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1, "undrained data must re-report (level-triggered)");
        }
        let mut buf = [0u8; 8];
        let got = a.read(&mut buf).unwrap();
        assert_eq!(got, 2);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "drained socket must stop reporting");
    }

    #[test]
    fn writable_interest_and_modify() {
        let (a, _b) = pair();
        let mut poller = Poller::new().unwrap();
        // A fresh socket with an empty send buffer is immediately writable.
        poller
            .register(a.as_raw_fd(), 3, Interest::WRITABLE)
            .unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].writable);

        // Dropping interest silences it.
        poller.modify(3, Interest::NONE).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn hangup_reports_ready() {
        let (a, b) = pair();
        let mut poller = Poller::new().unwrap();
        poller
            .register(a.as_raw_fd(), 9, Interest::READABLE)
            .unwrap();
        drop(b);
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable, "peer hangup must surface as readable");
    }

    #[test]
    fn registry_bookkeeping() {
        let (a, b) = pair();
        let mut poller = Poller::new().unwrap();
        assert!(poller.is_empty());
        poller
            .register(a.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();
        poller
            .register(b.as_raw_fd(), 2, Interest::READABLE)
            .unwrap();
        assert_eq!(poller.len(), 2);
        assert_eq!(
            poller
                .register(a.as_raw_fd(), 1, Interest::READABLE)
                .unwrap_err()
                .kind(),
            std::io::ErrorKind::AlreadyExists
        );
        poller.deregister(1).unwrap();
        assert_eq!(poller.len(), 1);
        assert_eq!(
            poller.deregister(1).unwrap_err().kind(),
            std::io::ErrorKind::NotFound
        );
        assert_eq!(
            poller.modify(1, Interest::NONE).unwrap_err().kind(),
            std::io::ErrorKind::NotFound
        );
        // Key 2 must have survived the swap_remove shuffle.
        poller.modify(2, Interest::BOTH).unwrap();
    }

    #[test]
    fn timeout_is_honoured() {
        let (a, _b) = pair();
        let mut poller = Poller::new().unwrap();
        poller
            .register(a.as_raw_fd(), 4, Interest::READABLE)
            .unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(40)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(
            start.elapsed() >= Duration::from_millis(35),
            "wait returned {}ms early",
            40u128.saturating_sub(start.elapsed().as_millis())
        );
    }
}
