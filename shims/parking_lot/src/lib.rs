//! Vendored stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate (the build environment has no registry access).
//!
//! Only the API this workspace uses is provided: [`Mutex`] with a `const`
//! constructor and a poison-free [`Mutex::lock`]. It is a thin wrapper over
//! [`std::sync::Mutex`] that ignores std's poisoning: like real
//! `parking_lot`, a panic while the lock is held leaves it usable and later
//! callers simply see the value as the panicking holder left it.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard};

/// A mutual-exclusion primitive with `parking_lot`'s panic-free `lock()`
/// signature, backed by [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`; usable in `static` items.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the mutex, blocking until it is available.
    ///
    /// Std's poisoning is deliberately ignored (`parking_lot` has no
    /// poisoning): if a previous holder panicked, the value is returned as
    /// that holder left it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    static GLOBAL: Mutex<i32> = Mutex::new(7);

    #[test]
    fn static_const_new_and_lock() {
        assert_eq!(*GLOBAL.lock(), 7);
        *GLOBAL.lock() += 1;
        assert_eq!(*GLOBAL.lock(), 8);
    }
}
