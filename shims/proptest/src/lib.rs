//! Vendored stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate (the build environment has no registry access).
//!
//! It implements the subset of proptest's surface the workspace's property
//! tests use — the [`proptest!`] macro, the [`Strategy`] trait with
//! [`Strategy::prop_map`] / [`Strategy::prop_flat_map`], range and tuple
//! strategies, [`collection::vec`], [`any`], and the `prop_assert*` /
//! [`prop_assume!`] macros — as a plain random-search engine:
//! each test draws `cases` seeded random inputs and runs the body on each.
//!
//! **No shrinking**: on failure the panic message reports the failing case
//! number under a deterministic per-test seed (derived by hashing the test's
//! `module_path!()`), so failures reproduce exactly on re-run but are not
//! minimised the way real proptest would.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{SampleUniform, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The generator handed to strategies; a deterministic seeded PRNG.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for one property test, seeded by hashing
/// the test's fully qualified name (FNV-1a, stable across runs/platforms).
pub fn test_rng(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Run-time settings for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each test must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config identical to the default but running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// A `prop_assume!` precondition rejected the inputs; draw again.
    Reject(String),
}

impl TestCaseError {
    /// Builds the failing variant.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds the rejecting variant.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// A strategy that always yields a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Strategy for "any value of this type", via the standard distribution.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rand::Rng::random(rng)
    }
}

/// Returns a strategy generating arbitrary values of `T`
/// (full range for integers, `[0, 1)` for floats, fair coin for `bool`).
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec()`]: an exact `usize`, a
    /// half-open `Range<usize>`, or an inclusive `RangeInclusive<usize>`.
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` length bounds.
        fn size_bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn size_bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn size_bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn size_bounds(self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty length range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    /// Returns a strategy generating vectors whose length lies in `size`
    /// and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min_len, max_len) = size.size_bounds();
        VecStrategy {
            element,
            min_len,
            max_len,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::random_range(rng, self.min_len..=self.max_len);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    /// Alias of this crate so `prop::collection::vec(..)` paths resolve.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
///
/// With extra arguments, they are formatted (with implicit captures) into
/// the failure message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Rejects the current case (draw fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests: each `fn` becomes a `#[test]` that draws its
/// arguments from the given strategies for `cases` iterations.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in -1000i64..1000, b in -1000i64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
// The doctest deliberately shows the `#[test]` functions users write inside
// the macro invocation; the macro itself is what turns them into tests.
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $(
        #[test]
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng =
                $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(why)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(16).max(1024),
                            "proptest {}: too many rejected cases (last: {})",
                            stringify!($name),
                            why,
                        );
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest {} failed on accepted case {}: {}",
                            stringify!($name),
                            accepted,
                            message,
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_respect_bounds(x in -5.0..5.0f64, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn tuples_and_vec_compose((a, b) in (0u64..100, 0u64..100), v in prop::collection::vec(0.0..1.0f64, 2..8)) {
            prop_assert!(a < 100 && b < 100);
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn flat_map_builds_dependent_sizes(v in (1usize..6).prop_flat_map(|n| prop::collection::vec(0i64..10, n))) {
            prop_assert!(!v.is_empty() && v.len() < 6);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn any_bool_generates(b in any::<bool>()) {
            // The draw itself is the test; just touch the value.
            prop_assert_eq!(b as u8 <= 1, true);
        }
    }

    #[test]
    fn test_rng_is_deterministic() {
        use crate::Strategy;
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s = 0.0..1.0f64;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
