//! Corollary 1 across every clustering family in the suite: the partition
//! found on the RBT release is identical to the partition found on the
//! original (normalized) data — for multiple workloads and seeds.

use rand::SeedableRng;
use rbt::cluster::metrics::same_partition;
use rbt::cluster::{Agglomerative, Dbscan, KMeans, KMeansInit, KMedoids, Linkage};
use rbt::core::{PairwiseSecurityThreshold, RbtConfig, RbtTransformer};
use rbt::data::synth::{two_rings, GaussianMixture};
use rbt::data::Normalization;
use rbt::linalg::dissimilarity::DissimilarityMatrix;
use rbt::linalg::distance::Metric;
use rbt::linalg::Matrix;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn rbt(normalized: &Matrix, seed: u64) -> Matrix {
    RbtTransformer::new(RbtConfig::uniform(
        PairwiseSecurityThreshold::uniform(0.35).unwrap(),
    ))
    .transform(normalized, &mut rng(seed))
    .unwrap()
    .transformed
}

fn mixture(rows: usize, cols: usize, k: usize, seed: u64) -> Matrix {
    let gm = GaussianMixture::well_separated(k, cols, 10.0, 1.0).unwrap();
    let raw = gm.sample(rows, &mut rng(seed)).matrix;
    Normalization::zscore_paper().fit_transform(&raw).unwrap().1
}

#[test]
fn kmeans_partition_preserved_across_seeds() {
    for seed in [1u64, 2, 3] {
        let normalized = mixture(250, 5, 3, seed);
        let released = rbt(&normalized, 100 + seed);
        let km = KMeans::new(3).unwrap().with_init(KMeansInit::FirstK);
        let a = km.fit(&normalized, &mut rng(0)).unwrap().labels;
        let b = km.fit(&released, &mut rng(0)).unwrap().labels;
        assert!(same_partition(&a, &b), "seed {seed}");
    }
}

#[test]
fn kmedoids_partition_preserved() {
    let normalized = mixture(200, 4, 3, 11);
    let released = rbt(&normalized, 12);
    let dm_a = DissimilarityMatrix::from_matrix(&normalized, Metric::Euclidean);
    let dm_b = DissimilarityMatrix::from_matrix(&released, Metric::Euclidean);
    let km = KMedoids::new(3).unwrap();
    let a = km.fit_from(&dm_a, &[0, 1, 2]).unwrap();
    let b = km.fit_from(&dm_b, &[0, 1, 2]).unwrap();
    assert!(same_partition(&a.labels, &b.labels));
    assert_eq!(a.medoids, b.medoids); // identical medoid objects, too
}

#[test]
fn every_linkage_dendrogram_cut_preserved() {
    let normalized = mixture(150, 4, 3, 21);
    let released = rbt(&normalized, 22);
    let dm_a = DissimilarityMatrix::from_matrix(&normalized, Metric::Euclidean);
    let dm_b = DissimilarityMatrix::from_matrix(&released, Metric::Euclidean);
    for linkage in [
        Linkage::Single,
        Linkage::Complete,
        Linkage::Average,
        Linkage::Ward,
    ] {
        let da = Agglomerative::new(linkage).fit(&dm_a).unwrap();
        let db = Agglomerative::new(linkage).fit(&dm_b).unwrap();
        for k in [2usize, 3, 5, 10] {
            assert!(
                same_partition(&da.cut(k).unwrap(), &db.cut(k).unwrap()),
                "{linkage:?} at k={k}"
            );
        }
        // Merge heights coincide as well (the full dendrogram transfers).
        for (ma, mb) in da.merges().iter().zip(db.merges()) {
            assert!((ma.distance - mb.distance).abs() < 1e-9);
        }
    }
}

#[test]
fn dbscan_clusters_and_noise_preserved() {
    let normalized = mixture(300, 4, 3, 31);
    let released = rbt(&normalized, 32);
    let a = Dbscan::new(1.2, 4)
        .unwrap()
        .fit(&normalized, Metric::Euclidean);
    let b = Dbscan::new(1.2, 4)
        .unwrap()
        .fit(&released, Metric::Euclidean);
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.noise, b.noise);
}

#[test]
fn non_convex_rings_preserved_for_dbscan() {
    // The workload where density-based clustering matters: RBT must not
    // break the rings either.
    let rings = two_rings(200, 2.0, 8.0, 0.05, &mut rng(41));
    let (_, normalized) = Normalization::zscore_paper()
        .fit_transform(&rings.matrix)
        .unwrap();
    let released = rbt(&normalized, 42);
    let a = Dbscan::new(0.25, 3)
        .unwrap()
        .fit(&normalized, Metric::Euclidean);
    let b = Dbscan::new(0.25, 3)
        .unwrap()
        .fit(&released, Metric::Euclidean);
    assert_eq!(a.labels, b.labels);
}

#[test]
fn manhattan_based_clustering_is_not_guaranteed() {
    // Negative control: the guarantee is Euclidean-specific. Manhattan
    // dissimilarities genuinely change under rotation.
    let normalized = mixture(100, 4, 2, 51);
    let released = rbt(&normalized, 52);
    let dm_a = DissimilarityMatrix::from_matrix(&normalized, Metric::Manhattan);
    let dm_b = DissimilarityMatrix::from_matrix(&released, Metric::Manhattan);
    assert!(dm_a.max_abs_diff(&dm_b).unwrap() > 0.01);
}
