//! The federated serving battery: N owner *clients* drive a real TCP
//! server's `Fed*` opcode family end-to-end and the joint release must be
//! bit-identical to the pooled single-owner baseline — the same golden
//! pin the in-process harness enforces, now across the wire. Plus the
//! version-skew contract: a frame tagged with a future wire version (and
//! a valid checksum) earns a typed error on **both** sides while the
//! connection keeps serving.

use std::io::Write;
use std::net::TcpListener;
use std::sync::Arc;
use std::thread;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rbt::cluster::{KMeans, KMeansInit};
use rbt::core::{PairwiseSecurityThreshold, Pipeline, RbtConfig};
use rbt::data::synth::GaussianMixture;
use rbt::data::{Dataset, Normalization};
use rbt::linalg::codec::{crc32, ByteWriter};
use rbt::protocol::{FederationConfig, KeyPolicy, Message, Owner, Party};
use rbt::server::{wire, Client, ClientError, Server, SessionRegistry, WireError};
use rbt::Matrix;

fn spawn_server() -> Server {
    let registry = Arc::new(SessionRegistry::new(8));
    Server::spawn("127.0.0.1:0", registry, 8).unwrap()
}

fn fixture(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let gm = GaussianMixture::well_separated(3, cols, 10.0, 1.2).unwrap();
    gm.sample(rows, &mut rng).matrix
}

/// Splits `m` into `n` contiguous row blocks (deliberately uneven).
fn partition(m: &Matrix, n: usize) -> Vec<Matrix> {
    let rows = m.rows();
    let mut cuts = vec![0];
    for i in 1..n {
        cuts.push(rows * i * i / (n * n) + i);
    }
    cuts.push(rows);
    cuts.windows(2)
        .map(|w| {
            let rows_refs: Vec<&[f64]> = (w[0]..w[1]).map(|r| m.row(r)).collect();
            Matrix::from_rows(&rows_refs).unwrap()
        })
        .collect()
}

fn fed_config(session: u64, n_cols: usize, owners: u16, seed: u64) -> FederationConfig {
    FederationConfig {
        session,
        n_cols,
        owners,
        normalization: Normalization::zscore_paper(),
        rbt: RbtConfig::uniform(PairwiseSecurityThreshold::new(0.2, 0.2).unwrap()),
        key_policy: KeyPolicy::Shared,
        seed,
        kmeans_k: 3,
        kmeans_max_iters: 128,
    }
}

fn encode_config(cfg: &FederationConfig) -> Vec<u8> {
    let mut w = ByteWriter::new();
    cfg.encode_into(&mut w);
    w.into_bytes()
}

/// The pooled single-owner baseline: `Pipeline` then first-k k-means.
fn pooled_baseline(pooled: &Matrix, cfg: &FederationConfig) -> (Vec<usize>, f64) {
    let dataset = Dataset::from_matrix(pooled.clone());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let out = Pipeline::new(cfg.rbt.clone())
        .with_normalization(cfg.normalization)
        .run(&dataset, &mut rng)
        .unwrap();
    let kmeans = KMeans::new(cfg.kmeans_k)
        .unwrap()
        .with_init(KMeansInit::FirstK)
        .with_max_iters(cfg.kmeans_max_iters);
    let mut krng = StdRng::seed_from_u64(cfg.seed);
    let fit = kmeans.fit(out.released.matrix(), &mut krng).unwrap();
    (fit.labels, fit.inertia)
}

/// Drives one owner's protocol turn over its own client connection:
/// sends `outbox`, decodes the drained mailbox, feeds it to the owner
/// state machine, and returns the newly produced outbound messages.
fn owner_turn(
    client: &mut Client,
    session: u64,
    id: u16,
    owner: &mut Owner,
    outbox: Vec<Vec<u8>>,
) -> Vec<Vec<u8>> {
    let inbound = client.fed_exchange(session, id, outbox).unwrap();
    let mut next = Vec::new();
    for bytes in inbound {
        let msg = Message::decode(&bytes).unwrap();
        for out in owner.handle(&msg).unwrap() {
            // Owner-originated messages all go to the hub, which routes
            // by kind; an owner never addresses another owner directly.
            assert!(!matches!(out.to, Party::Owner(_)));
            next.push(out.msg.encode());
        }
    }
    next
}

/// Golden pin over TCP: a 2-owner and a 3-owner federation, each owner a
/// separate client connection, reproduce the pooled baseline's joint
/// clustering bit-for-bit.
#[test]
fn federation_over_tcp_matches_pooled_baseline() {
    let server = spawn_server();
    let addr = server.local_addr();
    let pooled = fixture(180, 4, 11);

    for owners in [2u16, 3] {
        let session = 0xFED_0000 + u64::from(owners);
        let cfg = fed_config(session, 4, owners, 2026);
        let (baseline_labels, baseline_inertia) = pooled_baseline(&pooled, &cfg);

        let mut opener = Client::connect(addr).unwrap();
        assert_eq!(opener.fed_open(encode_config(&cfg)).unwrap(), session);
        // No owner has joined yet: the result poll must answer "in
        // flight", not an error.
        assert_eq!(opener.fed_result(session).unwrap(), None);

        let parts = partition(&pooled, owners as usize);
        let mut parties: Vec<(Client, Owner, Vec<Vec<u8>>)> = parts
            .into_iter()
            .enumerate()
            .map(|(i, block)| {
                (
                    Client::connect(addr).unwrap(),
                    Owner::new(i as u16, session, block).unwrap(),
                    Vec::new(),
                )
            })
            .collect();

        // Round-robin polling until the hub reports the joint result.
        let mut summary = None;
        'poll: for _ in 0..10_000 {
            for (i, (client, owner, outbox)) in parties.iter_mut().enumerate() {
                let pending = std::mem::take(outbox);
                *outbox = owner_turn(client, session, i as u16, owner, pending);
            }
            if parties.iter().all(|(_, _, outbox)| outbox.is_empty()) {
                if let Some(bytes) = opener.fed_result(session).unwrap() {
                    summary = Some(bytes);
                    break 'poll;
                }
            }
        }
        let summary = summary.expect("federation completed within the polling budget");
        let Message::JointDataset { summary, .. } = Message::decode(&summary).unwrap() else {
            panic!("fed_result must return an encoded JointDataset message");
        };

        assert_eq!(summary.rows as usize, pooled.rows(), "{owners}-owner rows");
        let labels: Vec<u32> = baseline_labels.iter().map(|&l| l as u32).collect();
        assert_eq!(summary.labels, labels, "{owners}-owner labels over TCP");
        assert_eq!(
            summary.inertia.to_bits(),
            baseline_inertia.to_bits(),
            "{owners}-owner inertia bits over TCP"
        );

        // Closing the session frees the hub slot; a second close reports
        // it gone, and further polls are typed usage errors.
        assert!(opener.fed_close(session).unwrap());
        assert!(!opener.fed_close(session).unwrap());
        match opener.fed_result(session) {
            Err(ClientError::Server { code: 2, message }) => {
                assert!(message.contains("federation"), "got: {message}")
            }
            other => panic!("expected a code-2 server error, got {other:?}"),
        }
    }
    server.shutdown();
}

/// Federation failures over the wire are typed `Error` frames in the
/// documented code families — and a corrupted protocol message is
/// rejected *before* delivery, so the session survives a client retry.
#[test]
fn federation_wire_errors_are_typed_and_nonfatal() {
    let server = spawn_server();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    // Unknown session: usage error (code 2).
    match client.fed_exchange(404, 0, Vec::new()) {
        Err(ClientError::Server { code: 2, .. }) => {}
        other => panic!("expected code-2, got {other:?}"),
    }

    // Undecodable session config: codec error (code 4).
    match client.fed_open(vec![1, 2, 3]) {
        Err(ClientError::Server { code: 4, .. }) => {}
        other => panic!("expected code-4, got {other:?}"),
    }

    let cfg = fed_config(9000, 4, 2, 77);
    assert_eq!(client.fed_open(encode_config(&cfg)).unwrap(), 9000);

    // Duplicate open: usage error, first session untouched.
    match client.fed_open(encode_config(&cfg)) {
        Err(ClientError::Server { code: 2, .. }) => {}
        other => panic!("expected code-2, got {other:?}"),
    }

    // A flipped byte in an encoded protocol message fails its CRC at
    // decode (code 4) without reaching the session's state machines...
    let parts = partition(&fixture(60, 4, 3), 2);
    let mut owner = Owner::new(0, 9000, parts[0].clone()).unwrap();
    let announce = client.fed_exchange(9000, 0, Vec::new()).unwrap();
    assert_eq!(announce.len(), 1);
    let join: Vec<Vec<u8>> = {
        let msg = Message::decode(&announce[0]).unwrap();
        owner
            .handle(&msg)
            .unwrap()
            .into_iter()
            .map(|o| o.msg.encode())
            .collect()
    };
    let mut corrupted = join.clone();
    corrupted[0][2] ^= 0x40;
    match client.fed_exchange(9000, 0, corrupted) {
        Err(ClientError::Server { code: 4, .. }) => {}
        other => panic!("expected code-4, got {other:?}"),
    }
    // ...so resending the intact message still succeeds.
    client.fed_exchange(9000, 0, join).unwrap();

    server.shutdown();
}

/// Re-tags an encoded frame with a foreign wire version and re-seals the
/// CRC trailer, producing exactly what a newer-protocol peer would send.
fn stomp_version(frame: &wire::Frame, version: u16) -> Vec<u8> {
    let mut bytes = wire::encode_frame(frame);
    bytes[4..6].copy_from_slice(&version.to_le_bytes());
    let crc_at = bytes.len() - wire::TRAILER_LEN;
    let crc = crc32(&bytes[..crc_at]);
    bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
    bytes
}

/// Server side of the version-skew contract: a v3-tagged frame with a
/// valid checksum earns a typed code-4 error naming the version — and
/// because the checksum is verified before the version, the frame is
/// fully consumed and the *same connection* keeps serving.
#[test]
fn version_skewed_frame_is_rejected_without_dropping_the_connection() {
    let server = spawn_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ping().unwrap();

    // Two skewed frames back to back: the reader must survive both.
    for _ in 0..2 {
        let skewed = stomp_version(&wire::Request::Ping.to_frame().with_request_id(9), 3);
        client.stream_mut().write_all(&skewed).unwrap();
        match client.receive() {
            Err(ClientError::Server { code: 4, message }) => {
                assert!(
                    message.contains("version"),
                    "error should name the version skew, got: {message}"
                );
            }
            other => panic!("expected a typed code-4 error, got {other:?}"),
        }
    }

    // Still the same TCP connection — no reconnect has happened — and it
    // still serves requests.
    client.ping().unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.runtime.accepted, 1, "no reconnect happened");
    server.shutdown();
}

/// Client side of the same contract: a response tagged with a future
/// version surfaces as a typed [`WireError::UnsupportedVersion`] and the
/// client's connection stays usable for the next call.
#[test]
fn client_reports_version_skew_as_typed_error_and_keeps_the_connection() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let mock = thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // First request: answer with a version-3 frame (valid CRC).
        let frame = wire::read_frame(&mut stream).unwrap().unwrap();
        let skewed = stomp_version(
            &wire::Response::Pong
                .to_frame()
                .with_request_id(frame.request_id),
            3,
        );
        stream.write_all(&skewed).unwrap();
        // Second request: answer properly, proving the client reused the
        // connection.
        let frame = wire::read_frame(&mut stream).unwrap().unwrap();
        let pong = wire::Response::Pong
            .to_frame()
            .with_request_id(frame.request_id);
        wire::write_frame(&mut stream, &pong).unwrap();
        // Swallow the goodbye, if any.
        let _ = wire::read_frame(&mut stream);
    });

    let mut client = Client::connect(addr).unwrap();
    match client.ping() {
        Err(ClientError::Wire(WireError::UnsupportedVersion { found: 3 })) => {}
        other => panic!("expected a typed UnsupportedVersion, got {other:?}"),
    }
    client.ping().unwrap();
    assert_eq!(
        client.metrics().reconnects,
        1,
        "only the initial connect — version skew must not burn the connection"
    );
    drop(client);
    mock.join().unwrap();
}

/// A mock TcpStream-level check is not enough for the reader thread's
/// `read_frame_patient` path: interleave a skewed frame *between* two
/// pipelined valid requests and both must still be answered.
#[test]
fn version_skew_between_pipelined_requests_loses_nothing() {
    let server = spawn_server();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let first = wire::Request::Ping.to_frame().with_request_id(21);
    let skewed = stomp_version(&wire::Request::Stats.to_frame().with_request_id(22), 7);
    let second = wire::Request::Ping.to_frame().with_request_id(23);
    let mut bytes = wire::encode_frame(&first);
    bytes.extend_from_slice(&skewed);
    bytes.extend_from_slice(&wire::encode_frame(&second));
    client.stream_mut().write_all(&bytes).unwrap();

    let mut pongs = 0;
    let mut version_errors = 0;
    for _ in 0..3 {
        match client.receive() {
            Ok(wire::Response::Pong) => pongs += 1,
            Err(ClientError::Server { code: 4, message }) if message.contains("version") => {
                version_errors += 1
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
    assert_eq!((pongs, version_errors), (2, 1));
    server.shutdown();
}
