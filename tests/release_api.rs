//! Conformance battery for the release API: all five registered methods
//! behind one `PrivacyTransform` boundary, with the RBT path pinned
//! bit-identical to the legacy `Pipeline`/`ReleaseSession` entry points.

use rand::SeedableRng;
use rbt::data::datasets;
use rbt::prelude::*;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn sample() -> Dataset {
    datasets::arrhythmia_sample()
}

#[test]
fn every_registered_method_fits_and_transforms() {
    let data = sample();
    for method in Method::ALL {
        let mut fitted = Release::of(&data)
            .with_method(method)
            .fit(&mut rng(7))
            .unwrap_or_else(|e| panic!("{}: {e:?}", method.name()));
        assert_eq!(fitted.method_name(), method.name());
        assert_eq!(fitted.n_attributes(), data.n_cols());
        // The initial release keeps the column layout and strips IDs.
        assert_eq!(fitted.released().n_cols(), data.n_cols());
        assert_eq!(fitted.released().n_rows(), data.n_rows());
        assert_eq!(fitted.released().columns(), data.columns());
        assert!(fitted.released().ids().is_none(), "{}", method.name());
        // Values actually move.
        assert!(
            fitted
                .released()
                .matrix()
                .max_abs_diff(data.matrix())
                .unwrap()
                > 1e-6,
            "{} released data unchanged",
            method.name()
        );
        // Out-of-sample batches transform without error and keep shape.
        let batch = fitted
            .transform_batch(&data)
            .unwrap_or_else(|e| panic!("{}: {e:?}", method.name()));
        assert_eq!(batch.n_rows(), data.n_rows());
        assert_eq!(batch.n_cols(), data.n_cols());
    }
}

#[test]
fn properties_match_the_paper_taxonomy() {
    let data = sample();
    for method in Method::ALL {
        let fitted = Release::of(&data)
            .with_method(method)
            .fit(&mut rng(3))
            .unwrap();
        let p = fitted.properties();
        let isometric = matches!(method, Method::Rbt | Method::HybridIsometry);
        assert_eq!(p.isometric, isometric, "{}", method.name());
        assert_eq!(p.invertible, isometric, "{}", method.name());
        assert_eq!(p.tunable_thresholds, isometric, "{}", method.name());
        if isometric {
            // 3 attributes → 2 steps; each angle worth log2(grid) bits.
            let bits = p.keyspace_bits.expect("keyed methods estimate bits");
            assert!(bits > 20.0, "{}: {bits}", method.name());
            // Releases really are isometric…
            let drift = rbt::core::isometry::dissimilarity_drift(
                &Normalization::zscore_paper()
                    .fit_transform(data.matrix())
                    .unwrap()
                    .1,
                fitted.released().matrix(),
            );
            assert!(drift < 1e-9, "{}: drift {drift}", method.name());
        } else {
            assert!(p.keyspace_bits.is_none(), "{}", method.name());
        }
    }
    // The hybrid isometry's coin adds one bit per step over RBT under the
    // same configuration.
    let rbt_bits = Release::of(&data)
        .with_method(Method::Rbt)
        .fit(&mut rng(5))
        .unwrap()
        .properties()
        .keyspace_bits
        .unwrap();
    let hybrid_bits = Release::of(&data)
        .with_method(Method::HybridIsometry)
        .fit(&mut rng(5))
        .unwrap()
        .properties()
        .keyspace_bits
        .unwrap();
    assert!((hybrid_bits - rbt_bits - 2.0).abs() < 1e-9);
}

#[test]
fn rbt_through_the_builder_is_bit_identical_to_the_pipeline() {
    let data = sample();
    let pst = PairwiseSecurityThreshold::uniform(0.3).unwrap();

    // Legacy path.
    let out = Pipeline::new(RbtConfig::uniform(pst))
        .run(&data, &mut rng(2024))
        .unwrap();
    let mut legacy_session = ReleaseSession::from_pipeline_output(&out).unwrap();

    // Blessed path, same RNG stream.
    let mut fitted = Release::of(&data)
        .with_method(Method::Rbt)
        .with_thresholds(pst)
        .fit(&mut rng(2024))
        .unwrap();

    assert!(
        fitted
            .released()
            .matrix()
            .approx_eq(out.released.matrix(), 0.0),
        "builder release differs from Pipeline::run"
    );
    // Batch transforms agree bitwise too.
    let via_builder = fitted.transform_batch(&data).unwrap();
    let via_session = legacy_session.transform_batch(&data).unwrap().released;
    assert!(via_builder.matrix().approx_eq(via_session.matrix(), 0.0));
    // And the builder exposes the session (same key) for session-level
    // workflows.
    let session = fitted.session().expect("rbt exposes its session");
    assert_eq!(session.key(), legacy_session.key());
    assert_eq!(session.normalizer(), legacy_session.normalizer());
    // Non-RBT methods do not.
    let hybrid = Release::of(&data)
        .with_method(Method::HybridIsometry)
        .fit(&mut rng(1))
        .unwrap();
    assert!(hybrid.session().is_none());
}

#[test]
fn invertible_methods_round_trip_and_baselines_refuse() {
    let data = sample();
    for method in Method::ALL {
        let mut fitted = Release::of(&data)
            .with_method(method)
            .fit(&mut rng(11))
            .unwrap();
        let released = fitted.transform_batch(&data).unwrap();
        match fitted.invert_batch(&released) {
            Ok(recovered) => {
                assert!(fitted.properties().invertible);
                assert!(
                    recovered.matrix().approx_eq(data.matrix(), 1e-8),
                    "{} recovery off",
                    method.name()
                );
            }
            Err(RbtError::NotInvertible { method: name }) => {
                assert!(!fitted.properties().invertible);
                assert_eq!(name, method.name());
            }
            Err(other) => panic!("{}: unexpected error {other:?}", method.name()),
        }
    }
}

#[test]
fn fitted_states_persist_through_the_sealed_envelope() {
    let data = sample();
    for method in Method::ALL {
        let mut fitted = Release::of(&data)
            .with_method(method)
            .fit(&mut rng(23))
            .unwrap();
        let bytes = fitted.to_bytes().unwrap();
        assert_eq!(&bytes[..4], b"RBTS", "{}", method.name());
        let mut back = decode_fitted(&bytes).unwrap_or_else(|e| panic!("{}: {e:?}", method.name()));
        assert_eq!(back.method_name(), method.name());
        assert_eq!(back.n_attributes(), data.n_cols());
        assert_eq!(back.properties(), fitted.properties());

        match method {
            // Deterministic states: the decoded transform reproduces the
            // original bitwise on any batch.
            Method::Rbt | Method::HybridIsometry => {
                let a = fitted.transform_batch(&data).unwrap();
                let b = back.transform_batch(&data).unwrap();
                assert!(a.matrix().approx_eq(b.matrix(), 0.0), "{}", method.name());
            }
            // Baselines replay from the fit-time seed: the decoded state's
            // first batch equals the fit-time release of the same data.
            _ => {
                let replay = back.transform_batch(&data).unwrap();
                assert!(
                    replay.matrix().approx_eq(fitted.released().matrix(), 0.0),
                    "{} seed replay diverged",
                    method.name()
                );
            }
        }

        // Corruption is rejected with a typed codec error, never a panic.
        for idx in [4usize, bytes.len() / 2, bytes.len() - 1] {
            let mut corrupt = bytes.clone();
            corrupt[idx] ^= 0x01;
            assert!(
                matches!(decode_fitted(&corrupt), Err(RbtError::Codec(_))),
                "{} flip at {idx}",
                method.name()
            );
        }
        for cut in [0usize, 3, 10, bytes.len() - 1] {
            assert!(
                matches!(decode_fitted(&bytes[..cut]), Err(RbtError::Codec(_))),
                "{} cut at {cut}",
                method.name()
            );
        }
    }
}

#[test]
fn baseline_batches_never_reuse_perturbation_draws() {
    // Baseline per-batch streams are derived from (fit seed, batch
    // content): distinct batches must get independent draws — reusing the
    // noise/swap pattern across batches would let a known-sample attacker
    // subtract it off — while a decoded state must perturb exactly like
    // the live one, including across repeated decodes (the CLI decodes
    // afresh per invocation).
    let data = sample();
    let other = {
        let mut d = sample();
        for v in d.matrix_mut().as_mut_slice() {
            *v += 1.0;
        }
        d
    };
    for method in [Method::Noise, Method::Geometric] {
        let mut fitted = Release::of(&data)
            .with_method(method)
            .fit(&mut rng(31))
            .unwrap();
        let bytes = fitted.to_bytes().unwrap();
        let a = fitted.transform_batch(&data).unwrap();
        let b = fitted.transform_batch(&other).unwrap();
        // The perturbation applied to `other` differs from the one applied
        // to `data` (not just shifted by the +1.0 offset).
        let reused = a
            .matrix()
            .as_slice()
            .iter()
            .zip(b.matrix().as_slice())
            .zip(
                data.matrix()
                    .as_slice()
                    .iter()
                    .zip(other.matrix().as_slice()),
            )
            .all(|((ra, rb), (xa, xb))| ((ra - xa) - (rb - xb)).abs() < 1e-12);
        assert!(!reused, "{} reused draws across batches", method.name());
        // Two independent decodes perturb identically to the live state.
        let mut d1 = decode_fitted(&bytes).unwrap();
        let mut d2 = decode_fitted(&bytes).unwrap();
        for batch in [&data, &other] {
            let live = fitted.transform_batch(batch).unwrap();
            assert!(live
                .matrix()
                .approx_eq(d1.transform_batch(batch).unwrap().matrix(), 0.0));
            assert!(live
                .matrix()
                .approx_eq(d2.transform_batch(batch).unwrap().matrix(), 0.0));
        }
    }
}

#[test]
fn decode_fitted_reads_legacy_session_files() {
    // The text and binary session key files the CLI has always written
    // decode straight into a fitted RBT transform.
    let data = sample();
    let out = Pipeline::new(RbtConfig::uniform(
        PairwiseSecurityThreshold::uniform(0.25).unwrap(),
    ))
    .run(&data, &mut rng(9))
    .unwrap();
    let session = ReleaseSession::from_pipeline_output(&out).unwrap();

    for bytes in [session.to_bytes(), session.to_text().unwrap().into_bytes()] {
        let mut fitted = decode_fitted(&bytes).unwrap();
        assert_eq!(fitted.method_name(), "rbt");
        let batch = fitted.transform_batch(&data).unwrap();
        assert!(batch.matrix().approx_eq(
            session
                .clone()
                .transform_batch(&data)
                .unwrap()
                .released
                .matrix(),
            0.0
        ));
    }
}

#[test]
fn builder_rejects_knobs_the_method_cannot_take() {
    let data = sample();
    // Thresholds on a baseline are a typed configuration error.
    let err = Release::of(&data)
        .with_method(Method::Noise)
        .with_thresholds(PairwiseSecurityThreshold::uniform(0.3).unwrap())
        .fit(&mut rng(0))
        .unwrap_err();
    assert!(matches!(err, RbtError::InvalidConfig(_)), "{err:?}");
    assert_eq!(err.exit_code(), 2);
    // Same for normalization on a baseline…
    let err = Release::of(&data)
        .with_method(Method::Swap)
        .with_normalization(Normalization::min_max_unit())
        .fit(&mut rng(0))
        .unwrap_err();
    assert!(matches!(err, RbtError::InvalidConfig(_)));
    // …and any method knob on a custom transform.
    let custom = Method::Geometric.default_transform();
    let err = Release::of(&data)
        .with_transform(custom)
        .with_thresholds(PairwiseSecurityThreshold::uniform(0.3).unwrap())
        .fit(&mut rng(0))
        .unwrap_err();
    assert!(matches!(err, RbtError::InvalidConfig(_)));
    // ID suppression, by contrast, applies to every registry method.
    let fitted = Release::of(&data)
        .with_method(Method::Noise)
        .with_id_suppression(false)
        .fit(&mut rng(4))
        .unwrap();
    assert_eq!(fitted.released().ids(), data.ids());
}

#[test]
fn custom_transforms_ride_the_same_builder() {
    let data = sample();
    // A pre-configured transform (higher noise than the registry default).
    let custom = Box::new(rbt::api::NoiseMethod::new(
        rbt::transform::AdditiveNoise::gaussian(2.0).unwrap(),
    ));
    let fitted = Release::of(&data)
        .with_transform(custom)
        .fit(&mut rng(8))
        .unwrap();
    assert_eq!(fitted.method_name(), "noise");
    assert!(!fitted.properties().isometric);
}
