//! The streaming contract: feeding a dataset through
//! `ReleaseSession::transform_batch` in arbitrary row splits (any chunk
//! size, any thread count) produces exactly — bitwise — the release that
//! the one-shot `Pipeline::run` produces on the concatenated data,
//! including the odd-`n` chained-pair case of §5.1.

use proptest::prelude::*;
use rand::SeedableRng;
use rbt::core::{Pipeline, PipelineOutput, RbtConfig, ReleaseSession};
use rbt::data::datasets;
use rbt::{Dataset, Matrix, PairwiseSecurityThreshold};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Rows `[lo, hi)` of a dataset, names and IDs included. Coinciding split
/// points produce genuinely empty batches — a valid streaming edge case.
fn slice_rows(ds: &Dataset, lo: usize, hi: usize) -> Dataset {
    let indices: Vec<usize> = (lo..hi).collect();
    let m = if indices.is_empty() {
        Matrix::from_vec(0, ds.n_cols(), Vec::new()).unwrap()
    } else {
        ds.matrix().select_rows(&indices).unwrap()
    };
    let out = Dataset::new(m, ds.columns().to_vec()).unwrap();
    match ds.ids() {
        Some(ids) => out.with_ids(ids[lo..hi].to_vec()).unwrap(),
        None => out,
    }
}

/// Splits `ds` at the given row boundaries (already sorted, within range).
fn split_at(ds: &Dataset, cuts: &[usize]) -> Vec<Dataset> {
    let mut batches = Vec::with_capacity(cuts.len() + 1);
    let mut lo = 0;
    for &cut in cuts {
        batches.push(slice_rows(ds, lo, cut));
        lo = cut;
    }
    batches.push(slice_rows(ds, lo, ds.n_rows()));
    batches
}

/// Concatenates the matrices of released batches, in order.
fn concat_matrices(batches: &[Dataset]) -> Matrix {
    Matrix::from_row_iter(
        batches
            .iter()
            .flat_map(|b| b.matrix().row_iter())
            .map(|r| r.to_vec()),
    )
    .unwrap()
}

fn run_one_shot(ds: &Dataset, seed: u64) -> Option<PipelineOutput> {
    let pipeline = Pipeline::new(RbtConfig::uniform(
        PairwiseSecurityThreshold::uniform(0.05).unwrap(),
    ));
    pipeline.run(ds, &mut rng(seed)).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_row_splits_match_the_one_shot_release_bitwise(
        rows in 4usize..32,
        cols in 2usize..6, // includes odd widths → the chained-pair rule
        values in prop::collection::vec(-1e3..1e3f64, 32 * 6),
        cuts in prop::collection::vec(0.0..1.0f64, 0..4),
        chunk_rows in 1usize..8,
        threads in 1usize..5,
        seed in any::<u64>(),
        with_ids in any::<bool>(),
    ) {
        let matrix = Matrix::from_vec(rows, cols, values[..rows * cols].to_vec()).unwrap();
        let ds = Dataset::from_matrix(matrix);
        let ds = if with_ids {
            ds.with_ids((0..rows as u64).map(|i| 1000 + i).collect()).unwrap()
        } else {
            ds
        };

        // Random data can make the security threshold unsatisfiable; those
        // draws exercise nothing about the session, skip them.
        let Some(out) = run_one_shot(&ds, seed) else { return Ok(()) };

        let mut session = ReleaseSession::from_pipeline_output(&out)
            .unwrap()
            .with_chunk_rows(chunk_rows)
            .with_threads(threads);

        let mut row_cuts: Vec<usize> = cuts.iter().map(|f| ((rows as f64) * f) as usize).collect();
        row_cuts.sort_unstable();
        let batches = split_at(&ds, &row_cuts);
        prop_assert_eq!(batches.iter().map(Dataset::n_rows).sum::<usize>(), rows);

        let released: Vec<Dataset> = batches
            .iter()
            .map(|b| session.transform_batch(b).unwrap().released)
            .collect();
        for b in &released {
            prop_assert!(b.ids().is_none(), "IDs must be suppressed on release");
        }
        let streamed = concat_matrices(&released);
        // Bitwise: tolerance 0.0.
        prop_assert!(
            streamed.approx_eq(out.released.matrix(), 0.0),
            "streamed release differs from one-shot (cuts {:?}, chunk_rows {}, threads {})",
            row_cuts, chunk_rows, threads
        );
        prop_assert_eq!(session.records_seen(), rows as u64);

        // The inverse path is bitwise-consistent with the owner-side
        // recovery of the one-shot pipeline.
        let one_shot_recovered = Pipeline::recover(&out, out.released.matrix()).unwrap();
        let streamed_recovered = concat_matrices(
            &released
                .iter()
                .map(|b| session.invert_batch(b).unwrap())
                .collect::<Vec<_>>(),
        );
        prop_assert!(streamed_recovered.approx_eq(&one_shot_recovered, 0.0));
    }
}

#[test]
fn paper_odd_n_chained_pair_streams_bitwise() {
    // The §5.1 shape: 3 attributes, pair 2 re-rotating pair 1's output.
    // Stream the 5 sample rows one at a time and compare to the one-shot
    // release under the same drawn key.
    let raw = datasets::arrhythmia_sample();
    let out = run_one_shot(&raw, 17).expect("arrhythmia sample always satisfies rho=0.05");
    assert_eq!(out.key.n_attributes(), 3);

    let mut session = ReleaseSession::from_pipeline_output(&out)
        .unwrap()
        .with_chunk_rows(1);
    let released: Vec<Dataset> = (0..raw.n_rows())
        .map(|i| {
            session
                .transform_batch(&slice_rows(&raw, i, i + 1))
                .unwrap()
                .released
        })
        .collect();
    let streamed = concat_matrices(&released);
    assert!(streamed.approx_eq(out.released.matrix(), 0.0));
    // Nothing on the fitting data drifts out of its own range.
    assert_eq!(session.records_out_of_range(), 0);
}
