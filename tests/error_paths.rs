//! Property tests for the release API's error paths: infeasible security
//! thresholds, dimension-mismatched batches, non-invertible baselines, and
//! non-finite input must all surface as typed `Err(RbtError::…)` values —
//! never a panic — under both `RBT_THREADS` modes (CI runs this suite with
//! the shared pool at its default width and pinned to one thread).

use proptest::prelude::*;
use rand::SeedableRng;
use rbt::data::datasets;
use rbt::prelude::*;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn sample() -> Dataset {
    datasets::arrhythmia_sample()
}

/// The z-scored arrhythmia sample has unit column variances, so
/// `Var(A − A')` maxes out around `2·(Var(X)+Var(Y)) ≈ 4`; anything ≥ 10
/// is safely infeasible.
const INFEASIBLE_RHO: f64 = 10.0;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn infeasible_thresholds_are_typed_not_panics(
        rho_scale in 1.0f64..1e6,
        seed in 0u64..1000,
    ) {
        let data = sample();
        let rho = INFEASIBLE_RHO * rho_scale;
        for method in [Method::Rbt, Method::HybridIsometry] {
            let err = Release::of(&data)
                .with_method(method)
                .with_thresholds(PairwiseSecurityThreshold::uniform(rho).unwrap())
                .fit(&mut rng(seed))
                .unwrap_err();
            match err {
                RbtError::InfeasibleThreshold { rho1, rho2, max_var1, max_var2, .. } => {
                    prop_assert_eq!(rho1, rho);
                    prop_assert_eq!(rho2, rho);
                    // The report tells the administrator what would work.
                    prop_assert!(max_var1.is_finite() && max_var1 < rho);
                    prop_assert!(max_var2.is_finite() && max_var2 < rho);
                    prop_assert_eq!(err.exit_code(), 6);
                }
                other => prop_assert!(false, "{}: {other:?}", method.name()),
            }
        }
    }

    #[test]
    fn dimension_mismatched_batches_are_typed_not_panics(
        cols in 1usize..8,
        rows in 1usize..6,
        seed in 0u64..1000,
    ) {
        // Fit on the 3-column sample, then feed batches of every other
        // width: the fitted state must refuse with DimensionMismatch.
        prop_assume!(cols != 3);
        let data = sample();
        let batch = Dataset::from_matrix(Matrix::zeros(rows, cols));
        for method in Method::ALL {
            let mut fitted = Release::of(&data)
                .with_method(method)
                .fit(&mut rng(seed))
                .unwrap();
            let err = fitted.transform_batch(&batch).unwrap_err();
            prop_assert!(
                matches!(err, RbtError::DimensionMismatch(_)),
                "{} transform: {err:?}",
                method.name()
            );
            prop_assert_eq!(err.exit_code(), 5);
            let err = fitted.invert_batch(&batch).unwrap_err();
            prop_assert!(
                matches!(
                    err,
                    RbtError::DimensionMismatch(_) | RbtError::NotInvertible { .. }
                ),
                "{} invert: {err:?}",
                method.name()
            );
        }
    }

    #[test]
    fn baseline_inversion_is_always_refused(seed in 0u64..1000) {
        let data = sample();
        for method in [Method::Noise, Method::Swap, Method::Geometric] {
            let mut fitted = Release::of(&data)
                .with_method(method)
                .fit(&mut rng(seed))
                .unwrap();
            let released = fitted.transform_batch(&data).unwrap();
            let err = fitted.invert_batch(&released).unwrap_err();
            match err {
                RbtError::NotInvertible { method: ref name } => {
                    prop_assert_eq!(name.as_str(), method.name());
                    prop_assert_eq!(err.exit_code(), 7);
                }
                other => prop_assert!(false, "{}: {other:?}", method.name()),
            }
        }
    }

    #[test]
    fn non_finite_input_is_a_typed_error(
        row in 0usize..5,
        col in 0usize..3,
        seed in 0u64..100,
    ) {
        let mut data = sample();
        data.matrix_mut()[(row, col)] = f64::NAN;
        // Every normalizing method refuses NaN at fit time; rank swapping
        // refuses it inside the perturbation. Either way the *data* is at
        // fault, so all three land in the same Data family (exit code 3).
        // (Additive noise and the geometric hybrid operate value-wise and
        // propagate NaN without statistics, so they are exempt.)
        for method in [Method::Rbt, Method::HybridIsometry, Method::Swap] {
            let result = Release::of(&data).with_method(method).fit(&mut rng(seed));
            prop_assert!(
                matches!(result, Err(RbtError::Data(_))),
                "{}: {result:?}",
                method.name()
            );
        }
    }
}

#[test]
fn linalg_rejects_non_finite_input_with_typed_errors() {
    // The Gaussian-elimination pivot search and the Jacobi eigen sort used
    // to panic on NaN (via `partial_cmp().expect()`); both now refuse with
    // a typed error before touching the data.
    use rbt::linalg::{eigen::symmetric_eigen, solve, Error as LinalgError};

    let mut a = Matrix::identity(3);
    a[(1, 1)] = f64::NAN;
    assert!(matches!(
        solve::solve(&a, &[1.0, 2.0, 3.0]),
        Err(LinalgError::InvalidArgument(_))
    ));
    assert!(matches!(
        solve::invert(&a),
        Err(LinalgError::InvalidArgument(_))
    ));
    // NaN slips through the symmetry gate (`NaN > tol` is false), so the
    // eigendecomposition needs its own finiteness check.
    assert!(matches!(
        symmetric_eigen(&a),
        Err(LinalgError::InvalidArgument(_))
    ));
    let mut inf = Matrix::identity(2);
    inf[(0, 1)] = f64::INFINITY;
    inf[(1, 0)] = f64::INFINITY;
    assert!(matches!(
        symmetric_eigen(&inf),
        Err(LinalgError::InvalidArgument(_))
    ));
}

#[test]
fn degenerate_shapes_are_typed_not_panics() {
    // Empty matrices, one-row datasets, and constant columns: every one
    // must come back as a typed error or a well-defined release — never a
    // panic — under whichever RBT_THREADS mode CI pinned.
    use rbt::linalg::{eigen::symmetric_eigen, solve, Error as LinalgError};

    assert!(matches!(
        solve::solve(&Matrix::zeros(0, 0), &[]),
        Err(LinalgError::Empty)
    ));
    assert!(matches!(
        symmetric_eigen(&Matrix::zeros(0, 0)),
        Err(LinalgError::Empty)
    ));

    // A 1-row dataset has no pairwise variance to protect: the fit must
    // refuse (infeasible/degenerate), not panic in the normalizer.
    let one_row = Dataset::from_matrix(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap());
    for method in [Method::Rbt, Method::HybridIsometry] {
        let result = Release::of(&one_row).with_method(method).fit(&mut rng(1));
        assert!(result.is_err(), "{}: {result:?}", method.name());
    }

    // Constant columns normalize to a degenerate (zero-variance) axis;
    // whether the threshold search succeeds or refuses, it must be typed.
    let constant = Dataset::from_matrix(
        Matrix::from_rows(&[&[5.0, 1.0, 9.0], &[5.0, 2.0, 7.0], &[5.0, 3.0, 2.0]]).unwrap(),
    );
    for method in [Method::Rbt, Method::HybridIsometry] {
        match Release::of(&constant).with_method(method).fit(&mut rng(2)) {
            Ok(mut fitted) => {
                let batch = fitted.transform_batch(&constant).unwrap();
                assert_eq!(batch.n_rows(), 3);
            }
            Err(err) => {
                // Typed refusal is acceptable; a panic is not.
                let _ = err.exit_code();
            }
        }
    }
}

#[test]
fn threshold_errors_match_between_builder_and_legacy_path() {
    // The builder's InfeasibleThreshold carries the same diagnostics the
    // legacy EmptySecurityRange did.
    let data = sample();
    let pst = PairwiseSecurityThreshold::uniform(INFEASIBLE_RHO).unwrap();
    let legacy = Pipeline::new(RbtConfig::uniform(pst))
        .run(&data, &mut rng(0))
        .unwrap_err();
    let blessed = Release::of(&data)
        .with_method(Method::Rbt)
        .with_thresholds(pst)
        .fit(&mut rng(0))
        .unwrap_err();
    let rbt::core::Error::EmptySecurityRange {
        i,
        j,
        max_var1,
        max_var2,
        ..
    } = legacy
    else {
        panic!("legacy path: {legacy:?}");
    };
    let RbtError::InfeasibleThreshold {
        i: bi,
        j: bj,
        max_var1: bm1,
        max_var2: bm2,
        ..
    } = blessed
    else {
        panic!("blessed path: {blessed:?}");
    };
    assert_eq!((i, j), (bi, bj));
    assert_eq!(max_var1.to_bits(), bm1.to_bits());
    assert_eq!(max_var2.to_bits(), bm2.to_bits());
}
