//! Smoke test for the facade crate: the re-exports advertised in
//! `src/lib.rs`'s crate map must resolve, and the headline guarantee —
//! a rotation release preserves pairwise distances — must hold on a
//! minimal 2-column example.

use rand::SeedableRng;
use rbt::linalg::distance::Metric;

#[test]
fn facade_reexports_resolve() {
    // Top-level convenience re-exports.
    let _: rbt::PairwiseSecurityThreshold = rbt::PairwiseSecurityThreshold::uniform(0.1).unwrap();
    let m: rbt::Matrix = rbt::Matrix::identity(2);
    let _: rbt::VarianceMode = rbt::VarianceMode::Sample;

    // Module-path forms from the crate-map table.
    let _: rbt::core::RbtConfig =
        rbt::core::RbtConfig::uniform(rbt::core::PairwiseSecurityThreshold::uniform(0.1).unwrap());
    let ds: rbt::Dataset = rbt::data::Dataset::from_matrix(m);
    assert_eq!(ds.n_cols(), 2);

    // One symbol from each re-exported member crate.
    let _ = rbt::linalg::Rotation2::from_degrees(30.0);
    let _ = rbt::cluster::KMeansInit::PlusPlus;
    let _ = rbt::transform::NoiseKind::Gaussian;
    assert!(rbt::attack::keyspace::brute_force_work(4, 360) > 0);
}

#[test]
fn two_column_rotation_round_trip_preserves_pairwise_distances() {
    // A small 2-attribute dataset; normalize, transform, and check that
    // every pairwise Euclidean distance survives both the release and the
    // key-inversion round trip.
    let raw = rbt::Matrix::from_rows(&[
        &[1.0, 10.0],
        &[2.0, 14.0],
        &[4.0, 9.0],
        &[8.0, 3.0],
        &[3.0, 7.0],
    ])
    .unwrap();
    let (_, z) = rbt::data::Normalization::zscore_paper()
        .fit_transform(&raw)
        .unwrap();

    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let out = rbt::RbtTransformer::new(rbt::RbtConfig::uniform(
        rbt::PairwiseSecurityThreshold::uniform(0.2).unwrap(),
    ))
    .transform(&z, &mut rng)
    .unwrap();

    // Pairwise distances are preserved (Theorem 2)…
    for i in 0..z.rows() {
        for j in (i + 1)..z.rows() {
            let before = Metric::Euclidean.distance(z.row(i), z.row(j));
            let after = Metric::Euclidean.distance(out.transformed.row(i), out.transformed.row(j));
            assert!(
                (before - after).abs() < 1e-9 * (1.0 + before),
                "distance ({i},{j}) drifted: {before} -> {after}"
            );
        }
    }
    // …the values themselves are not.
    assert!(
        !out.transformed.approx_eq(&z, 1e-3),
        "release left data undistorted"
    );

    // Round trip: the key inverts the release exactly.
    let back = out.key.invert(&out.transformed).unwrap();
    assert!(back.approx_eq(&z, 1e-9));
}
