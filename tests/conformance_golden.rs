//! Golden-file conformance: the §5.1 running-example session is committed
//! as key-file fixtures (text and binary) under `tests/fixtures/`. These
//! tests pin two things at once:
//!
//! 1. **format stability** — encoding today's `paper::run_example()`
//!    session must reproduce the committed fixtures byte for byte, so any
//!    codec change that would orphan existing key files fails CI;
//! 2. **semantic conformance** — *decoding* the fixtures must yield a
//!    session that replays the paper's Tables 2–6 digit-for-digit against
//!    the copies embedded in `rbt_data::datasets`, and inverts back to
//!    Table 1.
//!
//! Regenerate after an intentional format bump with:
//! `RBT_REGEN_FIXTURES=1 cargo test --test conformance_golden`.

use rbt::core::security::DEFAULT_GRID;
use rbt::core::{paper, DriftBounds, PairingStrategy, RbtConfig, ReleaseSession, ThresholdPolicy};
use rbt::data::datasets;
use rbt::linalg::dissimilarity::DissimilarityMatrix;
use rbt::linalg::distance::Metric;
use std::path::PathBuf;

const TEXT_FIXTURE: &str = "tests/fixtures/paper_session.rbt";
const BINARY_FIXTURE: &str = "tests/fixtures/paper_session.bin";

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(name)
}

/// The §5.1 session, rebuilt from the paper constants.
fn paper_session() -> ReleaseSession {
    let example = paper::run_example().unwrap();
    let config = RbtConfig::uniform(paper::pst1())
        .with_pairing(PairingStrategy::Explicit(vec![paper::PAIR1, paper::PAIR2]))
        .with_thresholds(ThresholdPolicy::PerPair(vec![paper::pst1(), paper::pst2()]))
        .with_solver_grid(DEFAULT_GRID);
    ReleaseSession::new(example.key, example.normalizer)
        .unwrap()
        .with_drift_bounds(DriftBounds::from_normalized(&example.normalized).unwrap())
        .unwrap()
        .with_config(config)
}

fn read_or_regen(name: &str, expected: &[u8]) -> Vec<u8> {
    let path = fixture_path(name);
    if std::env::var("RBT_REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, expected).unwrap();
    }
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {name}: {e}\n\
             regenerate with RBT_REGEN_FIXTURES=1 cargo test --test conformance_golden"
        )
    })
}

#[test]
fn text_fixture_is_byte_stable() {
    let expected = paper_session().to_text().unwrap();
    let committed = read_or_regen(TEXT_FIXTURE, expected.as_bytes());
    assert_eq!(
        String::from_utf8(committed).unwrap(),
        expected,
        "committed text fixture no longer matches the encoder — \
         a format change would orphan existing key files"
    );
}

#[test]
fn binary_fixture_is_byte_stable() {
    let expected = paper_session().to_bytes();
    let committed = read_or_regen(BINARY_FIXTURE, &expected);
    assert_eq!(
        committed, expected,
        "committed binary fixture no longer matches the encoder"
    );
}

#[test]
fn fixtures_agree_with_each_other() {
    let text = ReleaseSession::decode(&std::fs::read(fixture_path(TEXT_FIXTURE)).unwrap()).unwrap();
    let binary =
        ReleaseSession::decode(&std::fs::read(fixture_path(BINARY_FIXTURE)).unwrap()).unwrap();
    assert_eq!(text.key(), binary.key());
    for (a, b) in text.key().steps().iter().zip(binary.key().steps()) {
        assert_eq!(a.theta_degrees.to_bits(), b.theta_degrees.to_bits());
    }
    assert_eq!(text.normalizer(), binary.normalizer());
    assert_eq!(text.config(), binary.config());
    assert_eq!(text.drift_bounds(), binary.drift_bounds());
}

#[test]
fn decoded_fixture_replays_tables_2_through_6() {
    let example = paper::run_example().unwrap();
    let mut session =
        ReleaseSession::decode(&std::fs::read(fixture_path(TEXT_FIXTURE)).unwrap()).unwrap();

    // The decoded key is the paper's key, bit for bit.
    assert_eq!(session.key(), &example.key);
    assert_eq!(
        session.key().steps()[0].theta_degrees,
        paper::THETA1_DEGREES
    );
    assert_eq!(
        session.key().steps()[1].theta_degrees,
        paper::THETA2_DEGREES
    );

    // Table 1 → Table 2 via the decoded normalizer: digit-for-digit against
    // the embedded printed table (4 decimals), bitwise against the exact
    // in-process replay.
    let raw = datasets::arrhythmia_sample();
    let normalized = session.normalizer().transform(raw.matrix()).unwrap();
    assert!(normalized.approx_eq(&example.normalized, 0.0));
    assert!(normalized.approx_eq(datasets::arrhythmia_normalized_table2().matrix(), 5e-5));

    // Table 1 → Table 3 via the decoded session: bitwise against the
    // replay, digit-for-digit against the printed table.
    let batch = session.transform_batch(&raw).unwrap();
    assert!(batch.released.matrix().approx_eq(&example.transformed, 0.0));
    assert!(batch
        .released
        .matrix()
        .approx_eq(datasets::arrhythmia_transformed_table3().matrix(), 5e-4));
    // The fitting data itself never drifts out of its own fitted range.
    assert_eq!(batch.out_of_range_rows, 0);

    // Table 4 (== Table 6): the release's dissimilarity matrix.
    let dm = DissimilarityMatrix::from_matrix(batch.released.matrix(), Metric::Euclidean);
    let table4 = DissimilarityMatrix::from_condensed(
        5,
        datasets::lower_triangle_to_condensed(&datasets::ARRHYTHMIA_TABLE4_LOWER),
    )
    .unwrap();
    assert!(dm.max_abs_diff(&table4).unwrap() < 5e-4);
    // …and it is exactly the normalized data's dissimilarity (the §5.1
    // headline: clustering the release equals clustering the original).
    let dm_before = DissimilarityMatrix::from_matrix(&normalized, Metric::Euclidean);
    assert!(dm.max_abs_diff(&dm_before).unwrap() < 1e-12);

    // Table 5: what the re-normalization attacker reconstructs from the
    // decoded session's release.
    let attacked =
        rbt::attack::renormalize::renormalization_attack(batch.released.matrix(), None).unwrap();
    let dm5 = DissimilarityMatrix::from_matrix(&attacked.renormalized, Metric::Euclidean);
    let table5 = DissimilarityMatrix::from_condensed(
        5,
        datasets::lower_triangle_to_condensed(&datasets::ARRHYTHMIA_TABLE5_LOWER),
    )
    .unwrap();
    assert!(dm5.max_abs_diff(&table5).unwrap() < 5e-4);

    // And back to Table 1 (owner-side inversion).
    let recovered = session.invert_batch(&batch.released).unwrap();
    assert!(recovered.matrix().approx_eq(raw.matrix(), 1e-8));
}
