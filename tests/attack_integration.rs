//! Cross-crate attack evaluation on genuine RBT releases: the paper's own
//! attack fails, the post-publication attacks succeed — the security
//! envelope DESIGN.md documents.

use rand::SeedableRng;
use rbt::attack::brute::brute_force_angle;
use rbt::attack::known_sample::known_sample_attack;
use rbt::attack::pca::{pca_attack, SignResolution};
use rbt::attack::reconstruction::evaluate;
use rbt::attack::renormalize::renormalization_attack;
use rbt::core::{PairwiseSecurityThreshold, RbtConfig, RbtTransformer};
use rbt::data::rng::standard_normal;
use rbt::data::Normalization;
use rbt::linalg::Matrix;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Correlated, skewed population — realistic covariance structure.
fn population(rows: usize, seed: u64) -> Matrix {
    let mut r = rng(seed);
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|_| {
            let common = standard_normal(&mut r);
            (0..5)
                .map(|j| {
                    let g = standard_normal(&mut r);
                    g + (0.3 + 0.3 * j as f64) * common + 0.25 * g * g
                })
                .collect()
        })
        .collect();
    Matrix::from_row_iter(data).unwrap()
}

fn release(normalized: &Matrix, seed: u64) -> rbt::core::RbtOutput {
    RbtTransformer::new(RbtConfig::uniform(
        PairwiseSecurityThreshold::uniform(0.4).unwrap(),
    ))
    .transform(normalized, &mut rng(seed))
    .unwrap()
}

#[test]
fn renormalization_fails_on_real_releases() {
    let raw = population(500, 61);
    let (_, z) = Normalization::zscore_paper().fit_transform(&raw).unwrap();
    let out = release(&z, 62);
    let report = renormalization_attack(&out.transformed, Some(&z)).unwrap();
    // The paper's claim holds: large drift, large reconstruction error.
    assert!(report.drift_vs_released > 0.01);
    assert!(report.error_vs_original.unwrap() > 0.3);
}

#[test]
fn known_sample_attack_breaks_real_releases() {
    let raw = population(800, 63);
    let (_, z) = Normalization::zscore_paper().fit_transform(&raw).unwrap();
    let out = release(&z, 64);
    let idx: Vec<usize> = (0..5).collect(); // n known records
    let ko = z.select_rows(&idx).unwrap();
    let kr = out.transformed.select_rows(&idx).unwrap();
    let attack = known_sample_attack(&ko, &kr, &out.transformed).unwrap();
    let report = evaluate(&z, &attack.reconstructed, 0.01).unwrap();
    assert!(report.fraction_recovered > 0.999, "{report:?}");
}

#[test]
fn pca_attack_breaks_real_releases_distribution_only() {
    let raw = population(4_000, 65);
    let (_, z) = Normalization::zscore_paper().fit_transform(&raw).unwrap();
    let out = release(&z, 66);
    // Attacker's prior: an independent sample from the same population.
    let prior_raw = population(4_000, 67);
    let (_, prior) = Normalization::zscore_paper()
        .fit_transform(&prior_raw)
        .unwrap();
    let attack = pca_attack(&prior, &out.transformed, SignResolution::Skewness).unwrap();
    let report = evaluate(&z, &attack.reconstructed, 0.25).unwrap();
    assert!(
        report.fraction_recovered > 0.8,
        "distribution-only attack should breach: {report:?}"
    );
}

#[test]
fn brute_force_recovers_each_recorded_angle() {
    // With the pairing known and one original record leaked, every recorded
    // rotation angle can be recovered pair by pair — but only in reverse
    // application order, and re-rotated pairs make the naive per-pair scan
    // subtler. Here we check the *last* applied pair (directly observable).
    let raw = population(300, 68);
    let (_, z) = Normalization::zscore_paper().fit_transform(&raw).unwrap();
    let out = release(&z, 69);
    let last = out.key.steps().last().unwrap();
    // State just before the last rotation = invert only the last step.
    let partial_key = rbt::core::TransformationKey::new(vec![last.clone()], z.cols()).unwrap();
    let before_last = partial_key.invert(&out.transformed).unwrap();
    let estimate = brute_force_angle(
        &before_last.column(last.i)[..8],
        &before_last.column(last.j)[..8],
        &out.transformed.column(last.i)[..8],
        &out.transformed.column(last.j)[..8],
        720,
    )
    .unwrap();
    let err = (estimate.theta_degrees - last.theta_degrees.rem_euclid(360.0)).abs();
    assert!(err < 1e-6, "angle error {err}");
}

#[test]
fn rbt_composite_equals_attack_estimate() {
    // The known-sample estimate converges to the true composite rotation.
    let raw = population(400, 70);
    let (_, z) = Normalization::zscore_paper().fit_transform(&raw).unwrap();
    let out = release(&z, 71);
    let truth = out.key.composite_matrix().unwrap();
    let idx: Vec<usize> = (0..10).collect();
    let attack = known_sample_attack(
        &z.select_rows(&idx).unwrap(),
        &out.transformed.select_rows(&idx).unwrap(),
        &out.transformed,
    )
    .unwrap();
    assert!(attack
        .estimated_rotation_t
        .approx_eq(&truth.transpose(), 1e-8));
}
