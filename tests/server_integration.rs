//! The serving-layer battery: the multi-tenant daemon must be
//! *conformant* (server responses bit-identical to the in-process
//! one-shot `Pipeline` / `ReleaseSession` path, per tenant, under
//! concurrency, before and after LRU eviction) and *fault-contained*
//! (every malformed frame and every disconnect is a typed rejection that
//! leaves the server serving everyone else).
//!
//! Everything here runs under both threading modes: CI executes the suite
//! once with default threads and once with `RBT_THREADS=1` (the pool reads
//! the variable at call time, so no per-test plumbing is needed).

use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;

use rand::SeedableRng;
use rbt::core::{Pipeline, PipelineOutput, RbtConfig, ReleaseSession};
use rbt::server::{wire, Client, ClientError, Server, SessionRegistry};
use rbt::{Dataset, Matrix, PairwiseSecurityThreshold};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Deterministic synthetic data, distinct per seed.
fn dataset(seed: u64, rows: usize, cols: usize, spread: f64) -> Dataset {
    let data: Vec<f64> = (0..rows * cols)
        .map(|i| {
            let x = (seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64 * 1442695041))
                >> 11;
            ((x % 100_000) as f64 / 100_000.0) * spread - spread / 2.0
        })
        .collect();
    Dataset::new(
        Matrix::from_vec(rows, cols, data).unwrap(),
        (0..cols).map(|j| format!("c{j}")).collect(),
    )
    .unwrap()
}

/// Fits one tenant: the one-shot pipeline output (the conformance
/// reference), the fitting data, and the sealed session key bytes the
/// server will decode. Retries seeds until the 0.05 threshold is feasible.
fn fit_tenant(seed: u64) -> (PipelineOutput, Dataset, Vec<u8>) {
    let fit_data = dataset(seed, 24, 3, 90.0);
    let pipeline = Pipeline::new(RbtConfig::uniform(
        PairwiseSecurityThreshold::uniform(0.05).unwrap(),
    ));
    let out = (0..50)
        .find_map(|attempt| {
            pipeline
                .run(&fit_data, &mut rng(seed + 1000 * attempt))
                .ok()
        })
        .expect("a feasible key within 50 draws");
    let key_bytes = ReleaseSession::from_pipeline_output(&out)
        .unwrap()
        .to_bytes();
    (out, fit_data, key_bytes)
}

fn assert_bitwise(a: &Dataset, b: &Dataset, what: &str) {
    assert_eq!(a.n_rows(), b.n_rows(), "{what}: row count");
    assert_eq!(a.n_cols(), b.n_cols(), "{what}: col count");
    for (x, y) in a
        .matrix()
        .as_slice()
        .iter()
        .zip(b.matrix().as_slice().iter())
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: cell bits differ");
    }
}

fn spawn_server(capacity: usize) -> Server {
    Server::spawn("127.0.0.1:0", Arc::new(SessionRegistry::new(capacity)), 8).unwrap()
}

/// (a) Concurrent multi-tenant transforms are bit-identical to the
/// one-shot `Pipeline` release per tenant, and the inverse path matches
/// the in-process session inverse, all while six tenants hammer the same
/// server from six connections.
#[test]
fn concurrent_tenants_match_one_shot_pipeline_bitwise() {
    const TENANTS: u64 = 6;
    const ROUNDS: usize = 5;

    let fitted: Vec<_> = (0..TENANTS).map(fit_tenant).collect();
    let server = spawn_server(TENANTS as usize);
    let addr = server.local_addr();

    let mut loader = Client::connect(addr).unwrap();
    for (t, (_, _, key_bytes)) in fitted.iter().enumerate() {
        let (method, n_attributes) = loader
            .load_key(&format!("tenant-{t}"), key_bytes.clone())
            .unwrap();
        assert_eq!(method, "rbt");
        assert_eq!(n_attributes, 3);
    }

    let handles: Vec<_> = fitted
        .into_iter()
        .enumerate()
        .map(|(t, (out, fit_data, _))| {
            std::thread::spawn(move || {
                let tenant = format!("tenant-{t}");
                let mut client = Client::connect(addr).unwrap();
                // The in-process references: one-shot release of the
                // fitting data, and the session path for an out-of-sample
                // batch.
                let mut reference = ReleaseSession::from_pipeline_output(&out).unwrap();
                let oos = dataset(900 + t as u64, 17, 3, 120.0);
                let expected_oos = reference.transform_batch(&oos).unwrap();

                for _ in 0..ROUNDS {
                    let (released, drift) = client.transform(&tenant, &fit_data).unwrap();
                    assert_bitwise(&released, &out.released, "fit-data release");
                    assert_eq!(drift, 0, "fitting data never drifts out of range");

                    let (released_oos, drift_oos) = client.transform(&tenant, &oos).unwrap();
                    assert_bitwise(&released_oos, &expected_oos.released, "oos release");
                    assert_eq!(drift_oos, expected_oos.out_of_range_rows as u64);

                    let recovered = client.invert(&tenant, &released_oos).unwrap();
                    let expected_rec = reference.invert_batch(&released_oos).unwrap();
                    assert_bitwise(&recovered, &expected_rec, "inverse");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = Client::connect(addr).unwrap().stats().unwrap();
    assert_eq!(stats.known_tenants, TENANTS);
    assert_eq!(stats.live_sessions, TENANTS);
    // 3 requests per round per tenant (2 transforms + 1 invert).
    for row in &stats.tenants {
        assert_eq!(row.requests, 3 * ROUNDS as u64);
        assert_eq!(row.rows, ROUNDS as u64 * (24 + 17));
    }
    server.shutdown();
}

/// Sends raw bytes on a fresh connection and returns the server's answer
/// frames (usually one `Error`) until the connection closes.
fn send_raw(addr: std::net::SocketAddr, bytes: &[u8]) -> Vec<wire::Response> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(bytes).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut responses = Vec::new();
    while let Ok(Some(frame)) = wire::read_frame(&mut stream) {
        responses.push(wire::Response::from_frame(&frame).unwrap());
    }
    responses
}

fn assert_wire_error(responses: &[wire::Response], what: &str) {
    assert_eq!(responses.len(), 1, "{what}: expected exactly one answer");
    match &responses[0] {
        wire::Response::Error { code, .. } => {
            assert_eq!(*code, 4, "{what}: wire corruption is the codec family")
        }
        other => panic!("{what}: expected an Error frame, got {other:?}"),
    }
}

/// (b) Every truncated / byte-flipped / oversized / wrong-version frame is
/// rejected with a typed error and the server keeps serving.
#[test]
fn malformed_frames_are_rejected_and_the_server_survives() {
    let (out, fit_data, key_bytes) = fit_tenant(77);
    let server = spawn_server(4);
    let addr = server.local_addr();
    Client::connect(addr)
        .unwrap()
        .load_key("t", key_bytes)
        .unwrap();

    let valid = wire::encode_frame(
        &wire::Request::Transform {
            tenant: "t".to_string(),
            batch: fit_data.clone(),
        }
        .to_frame(),
    );

    // Byte-flipped: CRC mismatch.
    let mut flipped = valid.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    assert_wire_error(&send_raw(addr, &flipped), "byte flip");

    // Truncated: the peer closes mid-frame.
    let truncated = send_raw(addr, &valid[..valid.len() - 3]);
    assert_wire_error(&truncated, "truncation");

    // Oversized declared length, rejected before allocation.
    let mut oversized = valid.clone();
    oversized[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_wire_error(&send_raw(addr, &oversized), "oversized");

    // Wrong version with a re-sealed (valid) checksum.
    let mut wrong_version = valid.clone();
    wrong_version[4..6].copy_from_slice(&9u16.to_le_bytes());
    let crc_at = wrong_version.len() - 4;
    let crc = rbt::linalg::codec::crc32(&wrong_version[..crc_at]);
    wrong_version[crc_at..].copy_from_slice(&crc.to_le_bytes());
    assert_wire_error(&send_raw(addr, &wrong_version), "wrong version");

    // Bad magic.
    let mut bad_magic = valid.clone();
    bad_magic[..4].copy_from_slice(b"HTTP");
    assert_wire_error(&send_raw(addr, &bad_magic), "bad magic");

    // A well-framed but undecodable body must NOT drop the connection:
    // framing is still synchronized.
    let mut client = Client::connect(addr).unwrap();
    let garbage_body = wire::Frame::new(wire::Opcode::Transform, vec![0xAB; 7]);
    wire::write_frame(client.stream_mut(), &garbage_body).unwrap();
    let answer = wire::read_frame(client.stream_mut()).unwrap().unwrap();
    match wire::Response::from_frame(&answer).unwrap() {
        wire::Response::Error { code, .. } => assert_eq!(code, 4),
        other => panic!("expected Error, got {other:?}"),
    }
    client
        .ping()
        .expect("connection must stay open after a body error");

    // After all injections the server still transforms correctly.
    let (released, _) = client.transform("t", &fit_data).unwrap();
    assert_bitwise(&released, &out.released, "post-fault release");
    server.shutdown();
}

/// (d, satellite) Client disconnects mid-frame and mid-response: the
/// connection dies, the registry is not poisoned, and a follow-up request
/// from *another tenant* succeeds.
#[test]
fn disconnects_do_not_poison_the_registry() {
    let (out_a, fit_a, key_a) = fit_tenant(31);
    let (_, fit_b, key_b) = fit_tenant(32);
    let server = spawn_server(4);
    let addr = server.local_addr();
    {
        let mut loader = Client::connect(addr).unwrap();
        loader.load_key("a", key_a).unwrap();
        loader.load_key("b", key_b).unwrap();
    }

    // Mid-frame disconnect: half a header, then drop the socket.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&wire::MAGIC[..2]).unwrap();
        drop(stream);
    }
    // Mid-response disconnect: send a full transform request, close both
    // directions without reading the answer.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let frame = wire::Request::Transform {
            tenant: "b".to_string(),
            batch: fit_b.clone(),
        }
        .to_frame();
        stream.write_all(&wire::encode_frame(&frame)).unwrap();
        stream.shutdown(Shutdown::Both).unwrap();
        drop(stream);
    }

    // Another tenant must be completely unaffected.
    let mut client = Client::connect(addr).unwrap();
    let (released, _) = client.transform("a", &fit_a).unwrap();
    assert_bitwise(&released, &out_a.released, "post-disconnect release");
    server.shutdown();
}

/// (c) LRU eviction + key reload round-trips exactly: with capacity 1,
/// alternating tenants evict each other every request, and every response
/// stays bit-identical to the one-shot reference.
#[test]
fn lru_eviction_and_reload_round_trip_bitwise() {
    let (out_a, fit_a, key_a) = fit_tenant(51);
    let (out_b, fit_b, key_b) = fit_tenant(52);
    let server = spawn_server(1);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.load_key("a", key_a).unwrap();
    client.load_key("b", key_b).unwrap();

    for _ in 0..4 {
        let (ra, _) = client.transform("a", &fit_a).unwrap();
        assert_bitwise(&ra, &out_a.released, "tenant a after eviction");
        let (rb, _) = client.transform("b", &fit_b).unwrap();
        assert_bitwise(&rb, &out_b.released, "tenant b after eviction");
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.capacity, 1);
    assert_eq!(stats.known_tenants, 2);
    assert_eq!(stats.live_sessions, 1);
    // Each alternation evicts: load(b) evicts a, then every a-request
    // evicts b and vice versa → at least 8 evictions.
    assert!(
        stats.total_evictions >= 8,
        "expected churn, saw {} evictions",
        stats.total_evictions
    );
    for row in &stats.tenants {
        assert_eq!(row.requests, 4, "counters must survive eviction");
        assert!(row.evictions >= 4);
    }
    server.shutdown();
}

/// (satellite) Drift accounting across interleaved tenants: per-tenant
/// counters match a standalone `ReleaseSession` fed the same batches, with
/// no cross-tenant bleed.
#[test]
fn drift_counters_are_per_tenant_with_no_bleed() {
    let (out_a, _, key_a) = fit_tenant(61);
    let (out_b, _, key_b) = fit_tenant(62);
    // Batches drawn wider than the fitting spread so some rows drift.
    let batch_a = dataset(611, 19, 3, 200.0);
    let batch_b = dataset(622, 23, 3, 200.0);
    const ROUNDS: usize = 6;

    // The single-session reference, same accounting as
    // tests/session_equivalence.rs: records_out_of_range accumulates over
    // batches.
    let mut ref_a = ReleaseSession::from_pipeline_output(&out_a).unwrap();
    let mut ref_b = ReleaseSession::from_pipeline_output(&out_b).unwrap();
    for _ in 0..ROUNDS {
        ref_a.transform_batch(&batch_a).unwrap();
        ref_b.transform_batch(&batch_b).unwrap();
    }
    let expected_a = ref_a.records_out_of_range();
    let expected_b = ref_b.records_out_of_range();
    assert_ne!(
        expected_a, expected_b,
        "test needs distinguishable drift counts to detect bleed"
    );

    let server = spawn_server(2);
    let addr = server.local_addr();
    {
        let mut loader = Client::connect(addr).unwrap();
        loader.load_key("a", key_a).unwrap();
        loader.load_key("b", key_b).unwrap();
    }
    // Interleave from two threads.
    let ha = std::thread::spawn({
        let batch = batch_a.clone();
        move || {
            let mut c = Client::connect(addr).unwrap();
            for _ in 0..ROUNDS {
                c.transform("a", &batch).unwrap();
            }
        }
    });
    let hb = std::thread::spawn({
        let batch = batch_b.clone();
        move || {
            let mut c = Client::connect(addr).unwrap();
            for _ in 0..ROUNDS {
                c.transform("b", &batch).unwrap();
            }
        }
    });
    ha.join().unwrap();
    hb.join().unwrap();

    let stats = Client::connect(addr).unwrap().stats().unwrap();
    let row = |name: &str| {
        stats
            .tenants
            .iter()
            .find(|t| t.tenant == name)
            .unwrap()
            .clone()
    };
    assert_eq!(row("a").drift_rows, expected_a);
    assert_eq!(row("b").drift_rows, expected_b);
    assert_eq!(row("a").rows, ROUNDS as u64 * 19);
    assert_eq!(row("b").rows, ROUNDS as u64 * 23);
    server.shutdown();
}

/// Unknown tenants and non-invertible methods come back as typed server
/// errors with the right family codes, not dropped connections.
#[test]
fn server_errors_carry_the_family_codes() {
    let (_, fit_data, key_bytes) = fit_tenant(71);
    let server = spawn_server(2);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    match client.transform("ghost", &fit_data) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, 2, "unknown tenant is usage"),
        other => panic!("expected a typed server error, got {other:?}"),
    }

    // Corrupt key upload: codec family, connection stays usable.
    let mut corrupt = key_bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xFF;
    match client.load_key("t", corrupt) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, 4),
        other => panic!("expected a codec error, got {other:?}"),
    }

    client.load_key("t", key_bytes).unwrap();
    // A shape mismatch (wrong column count) is the shape family.
    let skinny = dataset(99, 4, 2, 10.0);
    match client.transform("t", &skinny) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, 5),
        other => panic!("expected a shape error, got {other:?}"),
    }

    assert!(client.evict("t").unwrap());
    assert!(!client.evict("t").unwrap());
    server.shutdown();
}

/// The per-connection in-flight window: a client that pipelines many
/// requests without reading still gets every answer, in order.
#[test]
fn pipelined_requests_drain_in_order_through_the_window() {
    let (out, fit_data, key_bytes) = fit_tenant(81);
    let server = spawn_server(2);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.load_key("t", key_bytes).unwrap();

    const PIPELINED: usize = 24; // 3x the default window of 8
    let request = wire::Request::Transform {
        tenant: "t".to_string(),
        batch: fit_data.clone(),
    };
    let mut reader = TcpStream::connect(addr).unwrap();
    let mut writer = reader.try_clone().unwrap();
    let bytes = wire::encode_frame(&request.to_frame());
    for _ in 0..PIPELINED {
        writer.write_all(&bytes).unwrap();
    }
    writer.flush().unwrap();
    for i in 0..PIPELINED {
        let frame = wire::read_frame(&mut reader).unwrap().unwrap();
        match wire::Response::from_frame(&frame).unwrap() {
            wire::Response::Transformed { released, .. } => {
                assert_bitwise(&released, &out.released, "pipelined response")
            }
            other => panic!("response {i}: expected Transformed, got {other:?}"),
        }
    }
    server.shutdown();
}
