//! Integration tests for the `rbt-cli` binary: the full
//! release → audit → recover workflow through the actual executable.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rbt-cli"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rbt-cli-test-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const SAMPLE: &str = "id,age,weight,heart_rate\n\
1237,75,80,63\n\
3420,56,64,53\n\
2543,40,52,70\n\
4461,28,58,76\n\
2863,44,90,68\n";

#[test]
fn release_audit_recover_workflow() {
    let dir = temp_dir("workflow");
    let input = dir.join("data.csv");
    std::fs::write(&input, SAMPLE).unwrap();
    let released = dir.join("released.csv");
    let key = dir.join("key.txt");
    let params = dir.join("norm.txt");
    let recovered = dir.join("recovered.csv");

    let out = cli()
        .args(["release", "--input"])
        .arg(&input)
        .arg("--output")
        .arg(&released)
        .args(["--key"])
        .arg(&key)
        .args(["--params"])
        .arg(&params)
        .args(["--rho", "0.3", "--seed", "42"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("released 5 rows x 3 attributes"));

    // Released CSV has no id column and different values.
    let released_text = std::fs::read_to_string(&released).unwrap();
    assert!(released_text.starts_with("age,weight,heart_rate\n"));
    assert!(!released_text.contains("1237"));

    // Key and params files parse.
    assert!(std::fs::read_to_string(&key)
        .unwrap()
        .starts_with("rbt-key v1 n=3"));
    assert!(std::fs::read_to_string(&params)
        .unwrap()
        .starts_with("rbt-normalizer v1 cols=3"));

    // Audit reports isometry.
    let audit = cli()
        .args(["audit", "--original"])
        .arg(&input)
        .args(["--released"])
        .arg(&released)
        .output()
        .unwrap();
    assert!(audit.status.success());
    let audit_text = String::from_utf8_lossy(&audit.stdout);
    assert!(
        audit_text.contains("isometric (tolerance 1e-6): true"),
        "{audit_text}"
    );

    // Inspect-key lists the two rotations.
    let inspect = cli()
        .args(["inspect-key", "--key"])
        .arg(&key)
        .output()
        .unwrap();
    assert!(inspect.status.success());
    let inspect_text = String::from_utf8_lossy(&inspect.stdout);
    assert!(inspect_text.contains("2 rotation steps"));
    assert!(inspect_text.contains("composite rotation is orthogonal: true"));

    // Recover round-trips to the original integers.
    let rec = cli()
        .args(["recover", "--input"])
        .arg(&released)
        .args(["--key"])
        .arg(&key)
        .args(["--params"])
        .arg(&params)
        .args(["--output"])
        .arg(&recovered)
        .output()
        .unwrap();
    assert!(
        rec.status.success(),
        "{}",
        String::from_utf8_lossy(&rec.stderr)
    );
    let recovered_text = std::fs::read_to_string(&recovered).unwrap();
    for line in ["75,80,63", "44,90,68"] {
        assert!(recovered_text.contains(line), "{recovered_text}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn release_is_seed_deterministic() {
    let dir = temp_dir("determinism");
    let input = dir.join("data.csv");
    std::fs::write(&input, SAMPLE).unwrap();
    let mut outputs = Vec::new();
    for run in 0..2 {
        let released = dir.join(format!("released{run}.csv"));
        let status = cli()
            .args(["release", "--input"])
            .arg(&input)
            .args(["--output"])
            .arg(&released)
            .args(["--key"])
            .arg(dir.join(format!("key{run}.txt")))
            .args(["--params"])
            .arg(dir.join(format!("norm{run}.txt")))
            .args(["--seed", "7"])
            .status()
            .unwrap();
        assert!(status.success());
        outputs.push(std::fs::read_to_string(&released).unwrap());
    }
    assert_eq!(outputs[0], outputs[1]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn keygen_transform_invert_round_trip() {
    let dir = temp_dir("session-roundtrip");
    let input = dir.join("data.csv");
    std::fs::write(&input, SAMPLE).unwrap();
    let key = dir.join("session.rbt");
    let released0 = dir.join("released0.csv");
    let transformed = dir.join("transformed.csv");
    let recovered = dir.join("recovered.csv");

    let out = cli()
        .args(["keygen", "--input"])
        .arg(&input)
        .args(["--key"])
        .arg(&key)
        .args(["--released"])
        .arg(&released0)
        .args(["--rho", "0.25", "--seed", "9"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("session key for 3 attributes"));
    // Default key-file format is the human-readable checksummed text form.
    assert!(std::fs::read_to_string(&key)
        .unwrap()
        .starts_with("rbt-session v1\n"));

    // Transforming the same rows through the persisted session must equal
    // the keygen-time release byte for byte (the matrices are bit-identical
    // and the CSV writer is deterministic).
    let out = cli()
        .args(["transform", "--key"])
        .arg(&key)
        .args(["--input"])
        .arg(&input)
        .args(["--output"])
        .arg(&transformed)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("drift: 0 records"));
    assert_eq!(
        std::fs::read(&transformed).unwrap(),
        std::fs::read(&released0).unwrap(),
        "streamed transform differs from the keygen-time release"
    );

    // invert recovers the raw values within 1e-9.
    let out = cli()
        .args(["invert", "--key"])
        .arg(&key)
        .args(["--input"])
        .arg(&transformed)
        .args(["--output"])
        .arg(&recovered)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let recovered_ds = rbt::data::csv::read_file(&recovered).unwrap();
    let original = rbt::data::csv::from_csv(SAMPLE).unwrap();
    let err = recovered_ds
        .matrix()
        .max_abs_diff(original.matrix())
        .unwrap();
    assert!(err < 1e-9, "recovered CSV off by {err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_and_text_key_files_are_equivalent() {
    let dir = temp_dir("session-binary");
    let input = dir.join("data.csv");
    std::fs::write(&input, SAMPLE).unwrap();
    let key_text = dir.join("session.rbt");
    let key_bin = dir.join("session.bin");
    let out_text = dir.join("t-text.csv");
    let out_bin = dir.join("t-bin.csv");

    for (key, fmt) in [(&key_text, "text"), (&key_bin, "binary")] {
        let out = cli()
            .args(["keygen", "--input"])
            .arg(&input)
            .args(["--key"])
            .arg(key)
            .args(["--seed", "4242", "--format", fmt])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert_eq!(&std::fs::read(&key_bin).unwrap()[..4], b"RBTS");

    for (key, out_path) in [(&key_text, &out_text), (&key_bin, &out_bin)] {
        let out = cli()
            .args(["transform", "--key"])
            .arg(key)
            .args(["--input"])
            .arg(&input)
            .args(["--output"])
            .arg(out_path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // Same seed, either key-file container: identical releases.
    assert_eq!(
        std::fs::read(&out_text).unwrap(),
        std::fs::read(&out_bin).unwrap()
    );

    // inspect-key understands session key files (both containers).
    for key in [&key_text, &key_bin] {
        let inspect = cli()
            .args(["inspect-key", "--key"])
            .arg(key)
            .output()
            .unwrap();
        assert!(inspect.status.success());
        let text = String::from_utf8_lossy(&inspect.stdout);
        assert!(text.contains("session key file"), "{text}");
        assert!(text.contains("drift bounds attached"), "{text}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_session_key_files_are_refused() {
    let dir = temp_dir("session-corrupt");
    let input = dir.join("data.csv");
    std::fs::write(&input, SAMPLE).unwrap();
    let key = dir.join("session.rbt");
    let output = dir.join("out.csv");

    let out = cli()
        .args(["keygen", "--input"])
        .arg(&input)
        .args(["--key"])
        .arg(&key)
        .args(["--seed", "7"])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Tamper with one rotation line in the text key file.
    let text = std::fs::read_to_string(&key).unwrap();
    let tampered = text.replacen("rotate 0", "rotate 1", 1);
    assert_ne!(text, tampered);
    std::fs::write(&key, tampered).unwrap();

    let out = cli()
        .args(["transform", "--key"])
        .arg(&key)
        .args(["--input"])
        .arg(&input)
        .args(["--output"])
        .arg(&output)
        .output()
        .unwrap();
    assert!(!out.status.success(), "tampered key must be refused");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("checksum mismatch"),
        "stderr should name the corruption: {stderr}"
    );
    assert!(!output.exists(), "no output written from a corrupt key");

    // inspect-key reports the same corruption instead of falling back to
    // the legacy bare-key parser.
    let out = cli()
        .args(["inspect-key", "--key"])
        .arg(&key)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("checksum mismatch"),
        "inspect-key should surface the decode error: {stderr}"
    );

    // Unknown --format is a usage error.
    let out = cli()
        .args(["keygen", "--input"])
        .arg(&input)
        .args(["--key"])
        .arg(&key)
        .args(["--format", "yaml"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown key format"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn methods_command_lists_the_registry() {
    let out = cli().arg("methods").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["rbt", "hybrid-isometry", "noise", "swap", "geometric"] {
        assert!(text.contains(name), "registry missing {name}: {text}");
    }
    assert!(text.contains("isometric=true"));
    assert!(text.contains("isometric=false"));
}

#[test]
fn keygen_selects_methods_by_name() {
    let dir = temp_dir("method-select");
    let input = dir.join("data.csv");
    std::fs::write(&input, SAMPLE).unwrap();

    // hybrid-isometry: fits, transforms, and inverts back to the raw data.
    let key = dir.join("hybrid.key");
    let transformed = dir.join("hybrid-t.csv");
    let recovered = dir.join("hybrid-r.csv");
    let out = cli()
        .args(["keygen", "--method", "hybrid-isometry", "--input"])
        .arg(&input)
        .args(["--key"])
        .arg(&key)
        .args(["--rho", "0.25", "--seed", "77"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("hybrid-isometry"));
    assert_eq!(&std::fs::read(&key).unwrap()[..4], b"RBTS");

    let out = cli()
        .args(["transform", "--key"])
        .arg(&key)
        .args(["--input"])
        .arg(&input)
        .args(["--output"])
        .arg(&transformed)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = cli()
        .args(["invert", "--key"])
        .arg(&key)
        .args(["--input"])
        .arg(&transformed)
        .args(["--output"])
        .arg(&recovered)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let recovered_ds = rbt::data::csv::read_file(&recovered).unwrap();
    let original = rbt::data::csv::from_csv(SAMPLE).unwrap();
    let err = recovered_ds
        .matrix()
        .max_abs_diff(original.matrix())
        .unwrap();
    assert!(err < 1e-9, "hybrid recovery off by {err}");

    // inspect-key understands fitted non-RBT states.
    let out = cli()
        .args(["inspect-key", "--key"])
        .arg(&key)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("hybrid-isometry"));

    // noise: fits and transforms, but --rho is a usage error and inversion
    // is a capability error (exit 7).
    let noise_key = dir.join("noise.key");
    let out = cli()
        .args(["keygen", "--method", "noise", "--input"])
        .arg(&input)
        .args(["--key"])
        .arg(&noise_key)
        .args(["--rho", "0.25"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "noise takes no --rho");
    let out = cli()
        .args(["keygen", "--method", "noise", "--input"])
        .arg(&input)
        .args(["--key"])
        .arg(&noise_key)
        .args(["--seed", "5"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let noise_out = dir.join("noise-t.csv");
    let out = cli()
        .args(["transform", "--key"])
        .arg(&noise_key)
        .args(["--input"])
        .arg(&input)
        .args(["--output"])
        .arg(&noise_out)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = cli()
        .args(["invert", "--key"])
        .arg(&noise_key)
        .args(["--input"])
        .arg(&noise_out)
        .args(["--output"])
        .arg(dir.join("noise-r.csv"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(7), "baseline inversion is exit 7");
    assert!(String::from_utf8_lossy(&out.stderr).contains("not invertible"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exit_codes_distinguish_failure_families() {
    let dir = temp_dir("exit-codes");
    let input = dir.join("data.csv");
    std::fs::write(&input, SAMPLE).unwrap();
    let key = dir.join("session.rbt");

    // Unknown method → usage (2), naming the registry.
    let out = cli()
        .args(["keygen", "--method", "wavelet", "--input"])
        .arg(&input)
        .args(["--key"])
        .arg(&key)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown method"));

    // Malformed CSV → input data (3), with the line number.
    let bad_csv = dir.join("bad.csv");
    std::fs::write(&bad_csv, "age,weight\n1.0,2.0\n3.0,banana\n").unwrap();
    let out = cli()
        .args(["release", "--input"])
        .arg(&bad_csv)
        .args(["--output"])
        .arg(dir.join("x.csv"))
        .args(["--key"])
        .arg(dir.join("k.txt"))
        .args(["--params"])
        .arg(dir.join("p.txt"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 3"));

    // Missing input file → I/O (3), naming the path.
    let out = cli()
        .args(["transform", "--key", "/nonexistent/key.rbt", "--input"])
        .arg(&input)
        .args(["--output"])
        .arg(dir.join("x.csv"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("/nonexistent/key.rbt"));

    // Infeasible threshold → 6, reporting what was achievable.
    let out = cli()
        .args(["release", "--input"])
        .arg(&input)
        .args(["--output"])
        .arg(dir.join("x.csv"))
        .args(["--key"])
        .arg(dir.join("k.txt"))
        .args(["--params"])
        .arg(dir.join("p.txt"))
        .args(["--rho", "1e6", "--seed", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(6));
    assert!(String::from_utf8_lossy(&out.stderr).contains("maximum achievable"));

    // Corrupt key file → 4; shape-mismatched batch → 5.
    let out = cli()
        .args(["keygen", "--input"])
        .arg(&input)
        .args(["--key"])
        .arg(&key)
        .args(["--seed", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = std::fs::read_to_string(&key).unwrap();
    std::fs::write(&key, text.replacen("rotate 0", "rotate 1", 1)).unwrap();
    let out = cli()
        .args(["transform", "--key"])
        .arg(&key)
        .args(["--input"])
        .arg(&input)
        .args(["--output"])
        .arg(dir.join("x.csv"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    std::fs::write(&key, text).unwrap();

    // Corrupt params file on recover → 4 (secret artifact, not input data).
    let p_key = dir.join("pk.txt");
    let p_params = dir.join("pp.txt");
    let p_rel = dir.join("prel.csv");
    let out = cli()
        .args(["release", "--input"])
        .arg(&input)
        .args(["--output"])
        .arg(&p_rel)
        .args(["--key"])
        .arg(&p_key)
        .args(["--params"])
        .arg(&p_params)
        .args(["--seed", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    std::fs::write(&p_params, "rbt-normalizer v1 cols=3\ngarbage\n").unwrap();
    let out = cli()
        .args(["recover", "--input"])
        .arg(&p_rel)
        .args(["--key"])
        .arg(&p_key)
        .args(["--params"])
        .arg(&p_params)
        .args(["--output"])
        .arg(dir.join("x.csv"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    assert!(String::from_utf8_lossy(&out.stderr).contains("params file"));

    let narrow = dir.join("narrow.csv");
    std::fs::write(&narrow, "age,weight\n1.0,2.0\n").unwrap();
    let out = cli()
        .args(["transform", "--key"])
        .arg(&key)
        .args(["--input"])
        .arg(&narrow)
        .args(["--output"])
        .arg(dir.join("x.csv"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(5));
    assert!(String::from_utf8_lossy(&out.stderr).contains("dimension mismatch"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_invocations_fail_cleanly() {
    // Unknown command.
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing required flag.
    let out = cli()
        .args(["release", "--input", "x.csv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing required flag"));

    // Nonexistent input file.
    let out = cli()
        .args([
            "release",
            "--input",
            "/nonexistent/data.csv",
            "--output",
            "/tmp/x.csv",
            "--key",
            "/tmp/k.txt",
            "--params",
            "/tmp/p.txt",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Bad rho.
    let out = cli()
        .args([
            "release",
            "--input",
            "/tmp/whatever.csv",
            "--output",
            "/tmp/x.csv",
            "--key",
            "/tmp/k.txt",
            "--params",
            "/tmp/p.txt",
            "--rho",
            "banana",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --rho"));

    // Help succeeds.
    let out = cli().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn serve_quarantines_a_corrupt_key_and_keeps_serving_the_rest() {
    let dir = temp_dir("serve-corrupt");
    let keys = dir.join("keys");
    std::fs::create_dir_all(&keys).unwrap();

    // One valid key...
    let input = dir.join("data.csv");
    std::fs::write(&input, SAMPLE).unwrap();
    let good_key = keys.join("tenant-good.rbt");
    let out = cli()
        .args(["keygen", "--input"])
        .arg(&input)
        .arg("--key")
        .arg(&good_key)
        .args(["--seed", "7", "--format", "binary"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // ...and one corrupted copy next to it.
    let mut bytes = std::fs::read(&good_key).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(keys.join("tenant-bad.rbt"), &bytes).unwrap();

    // serve must quarantine the torn key and come up serving the tenants
    // that decoded, rather than aborting the whole directory.
    let mut child = cli()
        .args(["serve", "--keys"])
        .arg(&keys)
        .args(["--addr", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut banner = String::new();
    {
        use std::io::BufRead;
        let stdout = child.stdout.as_mut().unwrap();
        std::io::BufReader::new(stdout)
            .read_line(&mut banner)
            .unwrap();
    }
    child.kill().unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        banner.contains("serving 1 tenants") && banner.contains("1 quarantined"),
        "unexpected serve banner: {banner:?}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("quarantined") && stderr.contains("tenant-bad"),
        "quarantine was not logged: {stderr}"
    );
    let quarantine = keys.join(".quarantine");
    let moved: Vec<_> = std::fs::read_dir(&quarantine)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(moved, vec!["tenant-bad.rbt.0".to_string()]);
    assert!(!keys.join("tenant-bad.rbt").exists());
    assert!(good_key.exists());

    // A directory that does not exist is an I/O failure (3), not codec.
    let out = cli()
        .args([
            "serve",
            "--keys",
            "/nonexistent/keys",
            "--addr",
            "127.0.0.1:0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn bench_serve_quick_smoke_runs_green_and_writes_the_perf_record() {
    let dir = temp_dir("bench-serve");
    let out_json = dir.join("BENCH_server.json");
    let out = cli()
        .args(["bench-serve", "--quick-smoke", "--tenants", "8", "--out"])
        .arg(&out_json)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("sustained"), "{stdout}");

    let json = std::fs::read_to_string(&out_json).unwrap();
    assert!(json.contains("\"mode\": \"quick-smoke\""));
    assert!(json.contains("\"tenants\": 8"));
    assert!(json.contains("\"sustained_rows_per_sec\""));
    assert!(json.contains("\"p99\""));
}
