//! Property battery for the throughput data path: the SIMD-width kernels,
//! the register-blocked matmul, the zero-copy streaming batches, and the
//! f32 release must all agree with their reference paths — exactly where
//! a bitwise contract is promised, within 1e-12 where the summation order
//! legitimately differs. CI runs this suite under both `RBT_THREADS`
//! modes (shared-pool default and pinned to one thread).

use proptest::prelude::*;
use rand::SeedableRng;
use rbt::data::datasets;
use rbt::linalg::kernels;
use rbt::prelude::*;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Plain one-accumulator references for the unrolled kernels.
fn scalar_sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn scalar_manhattan(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

fn vec_pair(len: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    len.prop_flat_map(|n| {
        (
            prop::collection::vec(-100.0..100.0f64, n),
            prop::collection::vec(-100.0..100.0f64, n),
        )
    })
}

/// A fitted 3-column session shared by the batch properties.
fn fitted_session() -> ReleaseSession {
    let raw = datasets::arrhythmia_sample();
    let out = Pipeline::new(RbtConfig::uniform(
        PairwiseSecurityThreshold::uniform(0.25).unwrap(),
    ))
    .run(&raw, &mut rng(7))
    .unwrap();
    ReleaseSession::from_pipeline_output(&out).unwrap()
}

/// A batch with the session's column layout from arbitrary row data.
fn batch_of(values: &[f64]) -> Dataset {
    let rows = values.len() / 3;
    Dataset::from_matrix(Matrix::from_vec(rows, 3, values[..rows * 3].to_vec()).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unrolled_kernels_match_scalar_within_1e12((xs, ys) in vec_pair(0..=67)) {
        // Lengths straddle the 8-wide chunking (remainders 0..7 included).
        let fast = kernels::squared_euclidean(&xs, &ys);
        let slow = scalar_sq_euclidean(&xs, &ys);
        prop_assert!((fast - slow).abs() <= 1e-12 * (1.0 + slow.abs()));
        let fast = kernels::manhattan(&xs, &ys);
        let slow = scalar_manhattan(&xs, &ys);
        prop_assert!((fast - slow).abs() <= 1e-12 * (1.0 + slow.abs()));
    }

    #[test]
    fn blocked_matmul_is_bitwise_naive(
        m in 1usize..28,
        k in 1usize..28,
        n in 1usize..28,
        seed in 0u64..1000,
    ) {
        // Sizes straddle the small-product dispatch cutoff, so both the
        // naive path and the register-blocked panels (including row and
        // column remainders) are exercised.
        let mut r = rng(seed);
        let a = Matrix::from_vec(m, k, (0..m * k).map(|_| r.random_range(-10.0..10.0)).collect()).unwrap();
        let b = Matrix::from_vec(k, n, (0..k * n).map(|_| r.random_range(-10.0..10.0)).collect()).unwrap();
        let blocked = a.matmul(&b).unwrap();
        let naive = a.matmul_naive(&b).unwrap();
        for (x, y) in blocked.as_slice().iter().zip(naive.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn zero_copy_batches_are_bitwise_the_cloning_path(
        values in prop::collection::vec(-50.0..150.0f64, 3..=60),
        chunk_rows in 1usize..12,
        threads in 1usize..4,
    ) {
        let session = fitted_session()
            .with_chunk_rows(chunk_rows)
            .with_threads(threads);
        let batch = batch_of(&values);

        let mut cloning = session.clone();
        let released = cloning.transform_batch(&batch).unwrap();

        let mut streaming = session.clone();
        let mut out = Matrix::zeros(0, 0);
        let oor = streaming.transform_batch_into(&batch, &mut out).unwrap();
        prop_assert_eq!(oor, released.out_of_range_rows);
        for (x, y) in out.as_slice().iter().zip(released.released.matrix().as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }

        let recovered = cloning.invert_batch(&released.released).unwrap();
        let mut inv = Matrix::zeros(0, 0);
        streaming.invert_batch_into(&released.released, &mut inv).unwrap();
        for (x, y) in inv.as_slice().iter().zip(recovered.matrix().as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn f32_release_honors_its_tolerance_contract(
        values in prop::collection::vec(-50.0..150.0f64, 3..=45),
        threads in 1usize..3,
    ) {
        let session = fitted_session().with_threads(threads);
        let batch = batch_of(&values);

        let mut f64_session = session.clone();
        let released = f64_session.transform_batch(&batch).unwrap();

        let mut f32_session = session.clone();
        let mut scratch = Matrix::zeros(0, 0);
        let mut out32 = Vec::new();
        f32_session
            .transform_batch_f32_into(&batch, &mut scratch, &mut out32)
            .unwrap();

        for (&q, &x) in out32.iter().zip(released.released.matrix().as_slice()) {
            // Bitwise: exactly the f64 release rounded once.
            prop_assert_eq!(q.to_bits(), (x as f32).to_bits());
            // And therefore inside the documented relative tolerance.
            let err = (f64::from(q) - x).abs();
            prop_assert!(err <= 2f64.powi(-24) * x.abs() + f64::from(f32::MIN_POSITIVE));
        }
    }
}
