//! Property-based tests of the RBT method's contract, on random data:
//! isometry, threshold satisfaction, key invertibility, and pairing
//! coverage — the invariants Theorems 1–2, Corollary 1 and Definition 2
//! promise.

use proptest::prelude::*;
use rand::SeedableRng;
use rbt::core::isometry::dissimilarity_drift;
use rbt::core::{PairingStrategy, PairwiseSecurityThreshold, RbtConfig, RbtTransformer};
use rbt::data::Normalization;
use rbt::linalg::Matrix;

/// Random full-rank-ish data matrices: values in a sane range, shapes that
/// exercise both even and odd attribute counts.
fn data_matrix() -> impl Strategy<Value = Matrix> {
    (4usize..40, 2usize..7).prop_flat_map(|(rows, cols)| {
        prop::collection::vec(-50.0..50.0f64, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
    })
}

fn normalized(m: &Matrix) -> Option<Matrix> {
    // Skip degenerate draws where a column is (nearly) constant — the
    // z-score is undefined there and the variance curves vanish.
    let (_, z) = Normalization::zscore_paper().fit_transform(m).ok()?;
    let vars = rbt::linalg::stats::column_variances(&z, rbt::VarianceMode::Sample).ok()?;
    vars.iter().all(|&v| v > 0.5).then_some(z)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rbt_is_always_an_isometry(m in data_matrix(), seed in 0u64..1000) {
        let Some(z) = normalized(&m) else { return Ok(()); };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out = RbtTransformer::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.05).unwrap(),
        ))
        .transform(&z, &mut rng);
        let Ok(out) = out else { return Ok(()); }; // unsatisfiable PST on this draw
        let drift = dissimilarity_drift(&z, &out.transformed);
        prop_assert!(drift < 1e-8, "drift {drift}");
    }

    #[test]
    fn achieved_variances_meet_the_threshold(m in data_matrix(), seed in 0u64..1000) {
        let Some(z) = normalized(&m) else { return Ok(()); };
        let rho = 0.1;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out = RbtTransformer::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(rho).unwrap(),
        ))
        .transform(&z, &mut rng);
        let Ok(out) = out else { return Ok(()); };
        for step in out.key.steps() {
            prop_assert!(step.achieved_var1 >= rho - 1e-9, "{step:?}");
            prop_assert!(step.achieved_var2 >= rho - 1e-9, "{step:?}");
        }
    }

    #[test]
    fn key_inverts_every_release(m in data_matrix(), seed in 0u64..1000) {
        let Some(z) = normalized(&m) else { return Ok(()); };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out = RbtTransformer::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.05).unwrap(),
        ))
        .transform(&z, &mut rng);
        let Ok(out) = out else { return Ok(()); };
        let back = out.key.invert(&out.transformed).unwrap();
        prop_assert!(back.approx_eq(&z, 1e-9));
    }

    #[test]
    fn key_text_round_trip(m in data_matrix(), seed in 0u64..1000) {
        let Some(z) = normalized(&m) else { return Ok(()); };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out = RbtTransformer::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.05).unwrap(),
        ))
        .transform(&z, &mut rng);
        let Ok(out) = out else { return Ok(()); };
        let parsed: rbt::core::TransformationKey = out.key.to_string().parse().unwrap();
        // The parsed key decodes the release identically.
        let a = out.key.invert(&out.transformed).unwrap();
        let b = parsed.invert(&out.transformed).unwrap();
        prop_assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn every_column_is_distorted(m in data_matrix(), seed in 0u64..1000) {
        let Some(z) = normalized(&m) else { return Ok(()); };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out = RbtTransformer::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.1).unwrap(),
        ).with_pairing(PairingStrategy::RandomShuffle))
        .transform(&z, &mut rng);
        let Ok(out) = out else { return Ok(()); };
        for j in 0..z.cols() {
            let before = z.column(j);
            let after = out.transformed.column(j);
            let moved = before.iter().zip(&after).any(|(a, b)| (a - b).abs() > 1e-9);
            prop_assert!(moved, "column {j} escaped distortion");
        }
    }

    #[test]
    fn hybrid_isometry_preserves_distances_and_inverts(m in data_matrix(), seed in 0u64..1000) {
        let Some(z) = normalized(&m) else { return Ok(()); };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let hybrid = rbt::core::reflection::HybridIsometry::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.05).unwrap(),
        ));
        let out = hybrid.transform(&z, &mut rng);
        let Ok(out) = out else { return Ok(()); };
        prop_assert!(dissimilarity_drift(&z, &out.transformed) < 1e-8);
        let back = out.key.invert(&out.transformed).unwrap();
        prop_assert!(back.approx_eq(&z, 1e-9));
        // v2 key text round trip.
        let parsed: rbt::core::reflection::IsometryKey =
            out.key.to_string().parse().unwrap();
        prop_assert!(parsed
            .apply(&z)
            .unwrap()
            .approx_eq(&out.transformed, 1e-10));
    }

    #[test]
    fn composite_matrix_is_orthogonal_and_consistent(m in data_matrix(), seed in 0u64..1000) {
        let Some(z) = normalized(&m) else { return Ok(()); };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out = RbtTransformer::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.05).unwrap(),
        ))
        .transform(&z, &mut rng);
        let Ok(out) = out else { return Ok(()); };
        let r = out.key.composite_matrix().unwrap();
        prop_assert!(rbt::linalg::rotation::is_orthogonal(&r, 1e-9));
        let via_matrix = z.matmul(&r.transpose()).unwrap();
        prop_assert!(via_matrix.approx_eq(&out.transformed, 1e-8));
    }
}
