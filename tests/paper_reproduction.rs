//! Cross-crate regression: the entire §5.1 running example of the paper,
//! from raw Table 1 to every printed artifact, plus the documented
//! Figure 2 erratum. These tests pin the reproduction so refactors cannot
//! silently drift from the paper.

use rbt::core::paper;
use rbt::core::security::{security_range, DEFAULT_GRID};
use rbt::data::datasets;
use rbt::linalg::dissimilarity::DissimilarityMatrix;
use rbt::linalg::distance::Metric;

#[test]
fn tables_1_through_6_reproduce() {
    let example = paper::run_example().unwrap();

    // Table 2 (paper rounds to 4 decimals).
    assert!(example
        .normalized
        .approx_eq(datasets::arrhythmia_normalized_table2().matrix(), 5e-5));

    // Table 3.
    assert!(example
        .transformed
        .approx_eq(datasets::arrhythmia_transformed_table3().matrix(), 5e-4));

    // Table 4 == Table 6: dissimilarity of the release.
    let dm = DissimilarityMatrix::from_matrix(&example.transformed, Metric::Euclidean);
    let table4 = DissimilarityMatrix::from_condensed(
        5,
        datasets::lower_triangle_to_condensed(&datasets::ARRHYTHMIA_TABLE4_LOWER),
    )
    .unwrap();
    assert!(dm.max_abs_diff(&table4).unwrap() < 5e-4);

    // Table 5: the re-normalization attack's dissimilarity matrix.
    let attacked =
        rbt::attack::renormalize::renormalization_attack(&example.transformed, None).unwrap();
    let dm5 = DissimilarityMatrix::from_matrix(&attacked.renormalized, Metric::Euclidean);
    let table5 = DissimilarityMatrix::from_condensed(
        5,
        datasets::lower_triangle_to_condensed(&datasets::ARRHYTHMIA_TABLE5_LOWER),
    )
    .unwrap();
    assert!(dm5.max_abs_diff(&table5).unwrap() < 5e-4);
}

#[test]
fn headline_result_dissimilarities_identical() {
    // §5.1: "the dissimilarity matrix corresponding to the normalized
    // database in Table 2 is exactly the dissimilarity matrix in Table 4".
    let example = paper::run_example().unwrap();
    let before = DissimilarityMatrix::from_matrix(&example.normalized, Metric::Euclidean);
    let after = DissimilarityMatrix::from_matrix(&example.transformed, Metric::Euclidean);
    assert!(before.max_abs_diff(&after).unwrap() < 1e-12);
}

#[test]
fn figure2_upper_endpoint_and_erratum() {
    let profile = paper::pair1_profile();
    let range = security_range(&profile, &paper::pst1(), DEFAULT_GRID).unwrap();
    assert_eq!(range.intervals().len(), 1);
    let (lo, hi) = range.intervals()[0];
    // Upper endpoint: paper-exact.
    assert!((hi - paper::FIGURE2_RANGE.1).abs() < 0.05);
    // Lower endpoint: the paper's 48.03° violates its own rho2 (erratum);
    // the real boundary is 82.69°.
    assert!((lo - paper::FIGURE2_RANGE_MEASURED.0).abs() < 0.05);
    assert!(profile.var_diff_second(paper::FIGURE2_RANGE.0) < paper::pst1().rho2);
}

#[test]
fn figure3_reproduces_exactly() {
    let profile = paper::pair2_profile();
    let range = security_range(&profile, &paper::pst2(), DEFAULT_GRID).unwrap();
    assert_eq!(range.intervals().len(), 1);
    let (lo, hi) = range.intervals()[0];
    assert!((lo - paper::FIGURE3_RANGE.0).abs() < 0.01, "lo = {lo}");
    assert!((hi - paper::FIGURE3_RANGE.1).abs() < 0.01, "hi = {hi}");
}

#[test]
#[allow(clippy::approx_constant)] // 0.318 is the paper's printed value, not 1/pi
fn achieved_variances_match_section_5_1() {
    let p1 = paper::pair1_profile();
    assert!((p1.var_diff_first(paper::THETA1_DEGREES) - 0.318).abs() < 1e-3);
    assert!((p1.var_diff_second(paper::THETA1_DEGREES) - 0.9805).abs() < 5e-4);
    let p2 = paper::pair2_profile();
    assert!((p2.var_diff_first(paper::THETA2_DEGREES) - 2.9714).abs() < 1e-3);
    assert!((p2.var_diff_second(paper::THETA2_DEGREES) - 6.9274).abs() < 1e-3);
}

#[test]
fn section_5_2_variance_camouflage() {
    let example = paper::run_example().unwrap();
    let vars =
        rbt::linalg::stats::column_variances(&example.transformed, rbt::VarianceMode::Sample)
            .unwrap();
    for (measured, printed) in vars.iter().zip([1.9039, 0.7840, 0.3122]) {
        assert!((measured - printed).abs() < 1e-3, "{measured} vs {printed}");
    }
}

#[test]
fn paper_thresholds_are_met_by_paper_angles() {
    let example = paper::run_example().unwrap();
    let steps = example.key.steps();
    assert!(steps[0].achieved_var1 >= paper::pst1().rho1);
    assert!(steps[0].achieved_var2 >= paper::pst1().rho2);
    assert!(steps[1].achieved_var1 >= paper::pst2().rho1);
    assert!(steps[1].achieved_var2 >= paper::pst2().rho2);
}

#[test]
fn paper_chosen_angles_lie_in_measured_ranges() {
    let r1 = security_range(&paper::pair1_profile(), &paper::pst1(), DEFAULT_GRID).unwrap();
    assert!(r1.contains(paper::THETA1_DEGREES));
    let r2 = security_range(&paper::pair2_profile(), &paper::pst2(), DEFAULT_GRID).unwrap();
    assert!(r2.contains(paper::THETA2_DEGREES));
}
