//! Cross-crate integration: the full release workflow — generate, pipeline,
//! serialize to CSV, mine on the other side, recover on the owner side —
//! exercising rbt-data, rbt-core, rbt-cluster, and the facade together.

use rand::SeedableRng;
use rbt::cluster::metrics::same_partition;
use rbt::cluster::{KMeans, KMeansInit};
use rbt::core::{PairingStrategy, Pipeline, PipelineOutput, RbtConfig, TransformationKey};
use rbt::data::synth::GaussianMixture;
use rbt::data::{csv, Dataset, Normalization};
use rbt::PairwiseSecurityThreshold;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn release(rows: usize, cols: usize, seed: u64) -> (Dataset, PipelineOutput) {
    let mut r = rng(seed);
    let gm = GaussianMixture::well_separated(3, cols, 10.0, 1.0).unwrap();
    let sample = gm.sample(rows, &mut r);
    let data = Dataset::from_matrix(sample.matrix)
        .with_ids((0..rows as u64).collect())
        .unwrap();
    let pipeline = Pipeline::new(RbtConfig::uniform(
        PairwiseSecurityThreshold::uniform(0.4).unwrap(),
    ));
    let output = pipeline.run(&data, &mut r).unwrap();
    (data, output)
}

#[test]
fn csv_round_trip_preserves_the_release() {
    let (_, output) = release(200, 4, 1);
    let text = csv::to_csv(&output.released);
    let parsed = csv::from_csv(&text).unwrap();
    assert_eq!(parsed.columns(), output.released.columns());
    // f64 Display round-trips exactly.
    assert!(parsed.matrix().approx_eq(output.released.matrix(), 0.0));
}

#[test]
fn miner_clusters_release_identically_to_owner() {
    let (_, output) = release(300, 6, 2);
    let km = KMeans::new(3).unwrap().with_init(KMeansInit::FirstK);
    let on_release = km
        .fit(output.released.matrix(), &mut rng(0))
        .unwrap()
        .labels;
    let on_original = km
        .fit(output.normalized.matrix(), &mut rng(0))
        .unwrap()
        .labels;
    assert!(same_partition(&on_release, &on_original));
}

#[test]
fn key_serialization_survives_the_full_loop() {
    let (data, output) = release(150, 5, 3);
    // Owner stores the key as text …
    let stored = output.key.to_string();
    // … and later parses it back to decode the release.
    let key: TransformationKey = stored.parse().unwrap();
    let normalized = key.invert(output.released.matrix()).unwrap();
    let raw = output.normalizer.inverse_transform(&normalized).unwrap();
    assert!(raw.approx_eq(data.matrix(), 1e-8));
}

#[test]
fn key_applies_to_late_arriving_rows() {
    // New rows arrive after the release; the owner normalizes them with the
    // *fitted* parameters and applies the stored key — the releases stay
    // mutually consistent (distances between old and new rows preserved).
    let (data, output) = release(120, 4, 4);
    let mut r = rng(5);
    let gm = GaussianMixture::well_separated(3, 4, 10.0, 1.0).unwrap();
    let fresh = gm.sample(30, &mut r);
    let fresh_normalized = output.normalizer.transform(&fresh.matrix).unwrap();
    let fresh_released = output.key.apply(&fresh_normalized).unwrap();

    // Distance between a fresh row and an old row must be identical in
    // normalized and released space.
    let old_norm = output.normalizer.transform(data.matrix()).unwrap();
    let old_rel = output.released.matrix();
    for i in 0..5 {
        for j in 0..5 {
            let before = rbt::linalg::distance::Metric::Euclidean
                .distance(fresh_normalized.row(i), old_norm.row(j));
            let after = rbt::linalg::distance::Metric::Euclidean
                .distance(fresh_released.row(i), old_rel.row(j));
            assert!((before - after).abs() < 1e-10);
        }
    }
}

#[test]
fn per_pair_thresholds_flow_through_pipeline() {
    let mut r = rng(6);
    let gm = GaussianMixture::well_separated(2, 4, 8.0, 1.0).unwrap();
    let data = Dataset::from_matrix(gm.sample(100, &mut r).matrix);
    let config = RbtConfig::uniform(PairwiseSecurityThreshold::uniform(0.2).unwrap())
        .with_pairing(PairingStrategy::Explicit(vec![(0, 1), (2, 3)]))
        .with_thresholds(rbt::core::ThresholdPolicy::PerPair(vec![
            PairwiseSecurityThreshold::new(1.0, 1.0).unwrap(),
            PairwiseSecurityThreshold::new(0.2, 0.2).unwrap(),
        ]));
    let output = Pipeline::new(config).run(&data, &mut r).unwrap();
    let steps = output.key.steps();
    assert!(steps[0].achieved_var1 >= 1.0 && steps[0].achieved_var2 >= 1.0);
    assert!(steps[1].achieved_var1 >= 0.2 && steps[1].achieved_var2 >= 0.2);
}

#[test]
fn normalization_variants_compose_with_rbt() {
    let mut r = rng(7);
    let gm = GaussianMixture::well_separated(2, 4, 8.0, 1.0).unwrap();
    let data = Dataset::from_matrix(gm.sample(100, &mut r).matrix);
    for normalization in [
        Normalization::zscore_paper(),
        Normalization::min_max_unit(),
        Normalization::DecimalScaling,
    ] {
        // PSTs are calibrated to the normalized scale: min-max and decimal
        // scaling shrink variances well below 1, so a fixed rho that works
        // for z-scores is unsatisfiable there. Scale rho to the smallest
        // column variance the normalization produces.
        let (_, preview) = normalization.fit_transform(data.matrix()).unwrap();
        let min_var = rbt::linalg::stats::column_variances(&preview, rbt::VarianceMode::Sample)
            .unwrap()
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        let pipeline = Pipeline::new(RbtConfig::uniform(
            PairwiseSecurityThreshold::uniform(0.05 * min_var).unwrap(),
        ))
        .with_normalization(normalization);
        let output = pipeline.run(&data, &mut r).unwrap();
        let drift = rbt::core::isometry::dissimilarity_drift(
            output.normalized.matrix(),
            output.released.matrix(),
        );
        assert!(drift < 1e-9, "{normalization:?}: drift {drift}");
        let recovered = Pipeline::recover(&output, output.released.matrix()).unwrap();
        assert!(recovered.approx_eq(data.matrix(), 1e-7));
    }
}
