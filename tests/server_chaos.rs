//! The chaos battery: the serving core under injected transport faults,
//! restarts, and resource pressure.
//!
//! The contract it proves, from ISSUE acceptance criteria:
//!
//! * under seeded [`FaultPlan`]s (stalled reads, torn writes, mid-frame
//!   disconnects, delayed responses) every request that receives a
//!   *success* response is bitwise identical to the one-shot `Pipeline`
//!   release — faults may kill connections, never corrupt answers;
//! * graceful shutdown loses zero in-flight responses and leaks zero
//!   connection threads (`DrainReport.spawned == joined`);
//! * a server restarted mid-stream on a new port is transparent to a
//!   resilient client (`connect_via` + retry);
//! * a kill-and-restart of the key store replays the journal and every
//!   tenant re-serves bitwise;
//! * deadlines shed, idle connections reap, stalls sever, capacity
//!   refuses, and the circuit breaker opens/half-opens — all observable
//!   through typed frames and runtime counters.
//!
//! Everything runs under both threading modes: CI executes the suite once
//! with default threads and once with `RBT_THREADS=1`.

use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use rand::SeedableRng;
use rbt::core::{Pipeline, PipelineOutput, RbtConfig, ReleaseSession};
use rbt::server::{
    wire, Client, ClientError, FaultPlan, KeyStore, RetryPolicy, Server, ServerConfig,
    SessionRegistry,
};
use rbt::{Dataset, Matrix, PairwiseSecurityThreshold};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Deterministic synthetic data, distinct per seed.
fn dataset(seed: u64, rows: usize, cols: usize, spread: f64) -> Dataset {
    let data: Vec<f64> = (0..rows * cols)
        .map(|i| {
            let x = (seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64 * 1442695041))
                >> 11;
            ((x % 100_000) as f64 / 100_000.0) * spread - spread / 2.0
        })
        .collect();
    Dataset::new(
        Matrix::from_vec(rows, cols, data).unwrap(),
        (0..cols).map(|j| format!("c{j}")).collect(),
    )
    .unwrap()
}

/// Fits one tenant: the one-shot pipeline output (the conformance
/// reference), the fitting data, and the sealed session key bytes.
fn fit_tenant(seed: u64) -> (PipelineOutput, Dataset, Vec<u8>) {
    let fit_data = dataset(seed, 24, 3, 90.0);
    let pipeline = Pipeline::new(RbtConfig::uniform(
        PairwiseSecurityThreshold::uniform(0.05).unwrap(),
    ));
    let out = (0..50)
        .find_map(|attempt| {
            pipeline
                .run(&fit_data, &mut rng(seed + 1000 * attempt))
                .ok()
        })
        .expect("a feasible key within 50 draws");
    let key_bytes = ReleaseSession::from_pipeline_output(&out)
        .unwrap()
        .to_bytes();
    (out, fit_data, key_bytes)
}

fn assert_bitwise(a: &Dataset, b: &Dataset, what: &str) {
    assert_eq!(a.n_rows(), b.n_rows(), "{what}: row count");
    assert_eq!(a.n_cols(), b.n_cols(), "{what}: col count");
    for (x, y) in a
        .matrix()
        .as_slice()
        .iter()
        .zip(b.matrix().as_slice().iter())
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: cell bits differ");
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rbt-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// (tentpole) Seeded fault plans on the client's transport: stalls, torn
/// writes, delayed writes, and mid-receive disconnects, at pseudo-random
/// byte offsets. Connections die freely; every exchange that still yields
/// a `Transformed` response must be bitwise identical to the one-shot
/// pipeline, and the server must come out of the storm serving cleanly.
#[test]
fn seeded_fault_plans_never_corrupt_a_successful_response() {
    let (out, fit_data, key_bytes) = fit_tenant(101);
    let server = Server::spawn("127.0.0.1:0", Arc::new(SessionRegistry::new(4)), 8).unwrap();
    let addr = server.local_addr();
    Client::connect(addr)
        .unwrap()
        .load_key("t", key_bytes)
        .unwrap();

    let request = wire::Request::Transform {
        tenant: "t".to_string(),
        batch: fit_data.clone(),
    };
    let request_bytes = wire::encode_frame(&request.to_frame());
    // One exchange moves roughly a request out and a same-sized response
    // back; schedule faults inside the span a few exchanges cover.
    let traffic_hint = request_bytes.len() as u64 * 3;

    let mut successes = 0u64;
    let mut severed_runs = 0u64;
    for seed in 0..24u64 {
        let plan = FaultPlan::seeded(seed, traffic_hint);
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut faulty = plan.wrap(stream);
        for _round in 0..3 {
            if faulty.write_all(&request_bytes).is_err() {
                break;
            }
            if faulty.flush().is_err() {
                break;
            }
            match wire::read_frame(&mut faulty) {
                Ok(Some(frame)) => match wire::Response::from_frame(&frame) {
                    Ok(wire::Response::Transformed {
                        released,
                        out_of_range_rows,
                    }) => {
                        assert_bitwise(&released, &out.released, "faulted-transport release");
                        assert_eq!(out_of_range_rows, 0);
                        successes += 1;
                    }
                    // A typed server error (e.g. after our own torn
                    // write) is a legal outcome; a corrupt success is not.
                    Ok(wire::Response::Error { .. }) => break,
                    Ok(other) => panic!("seed {seed}: unexpected response {other:?}"),
                    Err(_) => break,
                },
                // Severed or timed out mid-response: outcome unknown,
                // which is exactly what the resilient client retries.
                Ok(None) | Err(_) => break,
            }
        }
        if faulty.is_severed() {
            severed_runs += 1;
        }
    }
    assert!(
        successes > 0,
        "the storm must leave some exchanges intact to prove conformance"
    );
    assert!(
        severed_runs > 0,
        "the storm must actually sever some connections to prove fault handling"
    );

    // The server took the whole storm and still serves a clean client.
    let mut clean = Client::connect(addr).unwrap();
    let (released, _) = clean.transform("t", &fit_data).unwrap();
    assert_bitwise(&released, &out.released, "post-storm release");

    let report = server.shutdown();
    assert_eq!(
        report.spawned, report.joined,
        "every connection thread must be joined, report: {report:?}"
    );
}

/// (tentpole) Graceful drain: requests already written when `shutdown`
/// begins are answered (bitwise-correct), each surviving connection gets
/// a `GoingAway` farewell, and the drain joins every thread it spawned
/// without force-severing anyone.
#[test]
fn graceful_drain_loses_no_in_flight_responses_and_no_threads() {
    const CONNS: usize = 4;
    let (out, fit_data, key_bytes) = fit_tenant(111);
    let server = Server::spawn("127.0.0.1:0", Arc::new(SessionRegistry::new(4)), 8).unwrap();
    let addr = server.local_addr();
    Client::connect(addr)
        .unwrap()
        .load_key("t", key_bytes)
        .unwrap();

    let request_bytes = wire::encode_frame(
        &wire::Request::Transform {
            tenant: "t".to_string(),
            batch: fit_data.clone(),
        }
        .to_frame(),
    );

    // All connections write their request, then the barrier falls and the
    // main thread starts the drain while the responses are in flight.
    let barrier = Arc::new(Barrier::new(CONNS + 1));
    let handles: Vec<_> = (0..CONNS)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            let request_bytes = request_bytes.clone();
            let expected = out.released.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                stream.write_all(&request_bytes).unwrap();
                stream.flush().unwrap();
                barrier.wait();
                // The in-flight response must arrive despite the drain.
                let frame = wire::read_frame(&mut stream).unwrap().unwrap();
                match wire::Response::from_frame(&frame).unwrap() {
                    wire::Response::Transformed { released, .. } => {
                        assert_bitwise(&released, &expected, "drained in-flight response")
                    }
                    other => panic!("conn {i}: expected Transformed, got {other:?}"),
                }
                // Then the farewell (or a clean close if the farewell
                // raced the severance).
                match wire::read_frame(&mut stream) {
                    Ok(Some(frame)) => match wire::Response::from_frame(&frame).unwrap() {
                        wire::Response::GoingAway { .. } => true,
                        other => panic!("conn {i}: expected GoingAway, got {other:?}"),
                    },
                    Ok(None) | Err(_) => false,
                }
            })
        })
        .collect();

    barrier.wait();
    let report = server.shutdown();
    let farewells = handles
        .into_iter()
        .map(|h| h.join())
        .filter(|joined| matches!(joined, Ok(true)))
        .count();

    assert_eq!(
        report.spawned, report.joined,
        "drain must join every thread, report: {report:?}"
    );
    assert_eq!(report.forced, 0, "nothing should hit the drain deadline");
    assert!(
        farewells > 0,
        "at least one connection should see the GoingAway farewell"
    );
}

/// (tentpole) Server restart mid-stream: a resilient client following an
/// address provider rides a full stop-the-world restart (new port, same
/// registry) without surfacing a single error, and every response before
/// and after the restart is bitwise identical.
#[test]
fn resilient_client_rides_a_mid_stream_server_restart() {
    let (out, fit_data, key_bytes) = fit_tenant(121);
    let registry = Arc::new(SessionRegistry::new(4));
    let first = Server::spawn("127.0.0.1:0", Arc::clone(&registry), 8).unwrap();
    let addr_slot = Arc::new(Mutex::new(first.local_addr()));

    Client::connect(first.local_addr())
        .unwrap()
        .load_key("t", key_bytes)
        .unwrap();

    let policy = RetryPolicy {
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(100),
        ..RetryPolicy::default()
    };
    let provider_slot = Arc::clone(&addr_slot);
    let mut client = Client::connect_via(move || *provider_slot.lock().unwrap(), policy).unwrap();

    for _ in 0..3 {
        let (released, _) = client.transform("t", &fit_data).unwrap();
        assert_bitwise(&released, &out.released, "pre-restart release");
    }

    // Restart: new server on a fresh ephemeral port over the same
    // registry, then drain the old one (which farewells our client).
    let second = Server::spawn("127.0.0.1:0", Arc::clone(&registry), 8).unwrap();
    *addr_slot.lock().unwrap() = second.local_addr();
    let report = first.shutdown();
    assert_eq!(report.spawned, report.joined);

    for _ in 0..3 {
        let (released, _) = client
            .transform("t", &fit_data)
            .expect("the retry layer must absorb the restart");
        assert_bitwise(&released, &out.released, "post-restart release");
    }
    assert!(
        client.metrics().reconnects >= 2,
        "the client must have reconnected through the provider: {:?}",
        client.metrics()
    );

    let report = second.shutdown();
    assert_eq!(report.spawned, report.joined);
}

/// (satellite c) Kill-and-restart over the key store: a crash that leaves
/// the journal mid-put is replayed on reopen — interrupted puts complete,
/// torn temps are discarded in favour of the old key — and after a full
/// server restart every tenant re-serves bitwise.
#[test]
fn keystore_journal_replay_after_a_kill_re_serves_every_tenant_bitwise() {
    let dir = temp_dir("replay");
    let tenants: Vec<_> = (0..3u64)
        .map(|i| (format!("tenant-{i}"), fit_tenant(131 + i)))
        .collect();

    // First life: durable puts for tenants 0 and 1.
    {
        let store = KeyStore::open(&dir).unwrap();
        for (name, (_, _, key_bytes)) in tenants.iter().take(2) {
            store.put(name, key_bytes).unwrap();
        }
    }

    // The kill: fabricate the journal state of a process that died
    // mid-put. Layouts match the documented intent format
    // (RBTJ | name-len | name | payload-len | crc32, little-endian).
    let intent = |tenant: &str, bytes: &[u8]| {
        let mut rec = Vec::new();
        rec.extend_from_slice(b"RBTJ");
        rec.extend_from_slice(&(tenant.len() as u32).to_le_bytes());
        rec.extend_from_slice(tenant.as_bytes());
        rec.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        rec.extend_from_slice(&rbt::linalg::codec::crc32(bytes).to_le_bytes());
        rec
    };
    let journal = dir.join(".journal");
    // tenant-2: died between intent and rename — the put must win.
    let fresh = &tenants[2].1 .2;
    std::fs::write(journal.join("tenant-2.tmp"), fresh).unwrap();
    std::fs::write(journal.join("tenant-2.intent"), intent("tenant-2", fresh)).unwrap();
    // tenant-0: died mid-tmp-write of an update — the torn temp must be
    // discarded and the original key must stay authoritative.
    let torn_update = &tenants[1].1 .2;
    std::fs::write(
        journal.join("tenant-0.tmp"),
        &torn_update[..torn_update.len() / 2],
    )
    .unwrap();
    std::fs::write(
        journal.join("tenant-0.intent"),
        intent("tenant-0", torn_update),
    )
    .unwrap();
    // An orphan temp from an even earlier crash.
    std::fs::write(journal.join("ghost.tmp"), b"never committed").unwrap();

    // Second life: replay, load, serve — every tenant bitwise.
    let store = Arc::new(KeyStore::open(&dir).unwrap());
    let replay = store.replay_report();
    assert_eq!(replay.completed, 1, "tenant-2's put must be completed");
    assert_eq!(replay.discarded, 2, "torn temp + orphan temp discarded");

    let registry = Arc::new(SessionRegistry::new(8));
    let report = store.load_into(&registry).unwrap();
    assert_eq!(report.loaded, 3);
    assert_eq!(report.quarantined, 0);

    let server = Server::spawn("127.0.0.1:0", registry, 8).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for (name, (out, fit_data, _)) in &tenants {
        let (released, _) = client.transform(name, fit_data).unwrap();
        assert_bitwise(&released, &out.released, name);
    }
    drop(client);
    let report = server.shutdown();
    assert_eq!(report.spawned, report.joined);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A data-plane deadline of zero sheds every transform with a typed
/// `Deadline` frame (the connection survives), while the control plane
/// keeps answering; the shed count lands in the runtime counters.
#[test]
fn exhausted_deadlines_shed_with_a_typed_frame_not_a_dead_connection() {
    let (_, fit_data, key_bytes) = fit_tenant(141);
    let registry = Arc::new(SessionRegistry::new(4));
    registry.load_key("t", key_bytes).unwrap();
    let config = ServerConfig {
        data_deadline: Duration::ZERO,
        ..ServerConfig::default()
    };
    let server = Server::spawn_with("127.0.0.1:0", registry, config).unwrap();

    // No retries: a shed is transport-class (retry elsewhere is the
    // production answer), but here we want to observe the typed error.
    let mut client = Client::connect_with(server.local_addr(), RetryPolicy::no_retries()).unwrap();
    match client.transform("t", &fit_data) {
        Err(ClientError::Deadline {
            waited_ms: _,
            budget_ms,
        }) => assert_eq!(budget_ms, 0),
        other => panic!("expected a Deadline shed, got {other:?}"),
    }
    // Same connection still serves the control plane.
    client
        .ping()
        .expect("shedding must not kill the connection");
    let stats = client.stats().unwrap();
    assert!(
        stats.runtime.deadlines_shed >= 1,
        "runtime counters must record the shed: {:?}",
        stats.runtime
    );

    let report = server.shutdown();
    assert_eq!(report.spawned, report.joined);
}

/// The idle reaper closes a silent connection after `idle_timeout`, and a
/// peer that goes quiet *mid-frame* is severed once `stall_budget` burns;
/// both outcomes are distinguishable in the runtime counters.
#[test]
fn idle_connections_reap_and_mid_frame_stalls_sever() {
    let registry = Arc::new(SessionRegistry::new(4));
    let config = ServerConfig {
        read_tick: Duration::from_millis(10),
        idle_timeout: Duration::from_millis(60),
        stall_budget: Duration::from_millis(60),
        ..ServerConfig::default()
    };
    let server = Server::spawn_with("127.0.0.1:0", registry, config).unwrap();
    let addr = server.local_addr();

    // Idle: connect, say nothing. The server must close within roughly
    // idle_timeout; the blocking read observes EOF.
    let mut idle = TcpStream::connect(addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    match wire::read_frame(&mut idle) {
        Ok(None) => {}
        other => panic!("expected a clean close from the reaper, got {other:?}"),
    }

    // Stall: send half a header, then go quiet. The stall detector must
    // sever and answer with a typed error (best-effort).
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stalled.write_all(&wire::MAGIC[..2]).unwrap();
    stalled.flush().unwrap();
    // The severance can win the race against the error frame, so a close
    // with no frame is also legal.
    if let Ok(Some(frame)) = wire::read_frame(&mut stalled) {
        match wire::Response::from_frame(&frame).unwrap() {
            wire::Response::Error { code, .. } => assert_eq!(code, 4),
            other => panic!("expected the stall rejection, got {other:?}"),
        }
    }

    // Both events must be visible in the runtime counters.
    let stats = Client::connect(addr).unwrap().stats().unwrap();
    assert!(stats.runtime.idle_reaped >= 1, "{:?}", stats.runtime);
    assert!(stats.runtime.stalled >= 1, "{:?}", stats.runtime);

    let report = server.shutdown();
    assert_eq!(report.spawned, report.joined);
}

/// Pipelining far past the in-flight window is not a stall: complete
/// frames waiting behind a full window mean the *server* paused reading,
/// so the stall detector must stay quiet even with a stall budget far
/// below the time the backlog takes to serve — every request answers, in
/// order, on one surviving connection.
///
/// The burst is thousands of tiny frames so the whole backlog lands in
/// the server's reassembly buffer within a few reads; from then on the
/// peer sends nothing (it owes nothing) while the serialized backlog
/// takes many ticks to serve — exactly the state a naive "bytes pending
/// means mid-frame" check misreads as a stalled peer.
#[test]
fn pipelining_past_the_window_is_backpressure_not_a_stall() {
    let registry = Arc::new(SessionRegistry::new(4));
    let config = ServerConfig {
        read_tick: Duration::from_millis(5),
        // Far below the time the backlog takes to serve: any tick that
        // mistakes unserved complete frames for peer silence severs.
        stall_budget: Duration::from_millis(1),
        ..ServerConfig::default()
    };
    let server = Server::spawn_with("127.0.0.1:0", registry, config).unwrap();
    let addr = server.local_addr();

    const PIPELINED: usize = 2000;
    let mut reader = TcpStream::connect(addr).unwrap();
    reader
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = reader.try_clone().unwrap();
    let bytes = wire::encode_frame(&wire::Request::Ping.to_frame());
    let burst: Vec<u8> = bytes.repeat(PIPELINED);
    writer.write_all(&burst).unwrap();
    writer.flush().unwrap();
    for i in 0..PIPELINED {
        let frame = wire::read_frame(&mut reader).unwrap().unwrap();
        match wire::Response::from_frame(&frame).unwrap() {
            wire::Response::Pong => {}
            other => panic!("response {i}: expected Pong, got {other:?}"),
        }
    }
    let stats = Client::connect(addr).unwrap().stats().unwrap();
    assert_eq!(
        stats.runtime.stalled, 0,
        "backpressure misread as a stall: {:?}",
        stats.runtime
    );
    let report = server.shutdown();
    assert_eq!(report.spawned, report.joined);
}

/// A client that pipelines past the window and then half-closes still
/// gets every buffered request answered before the connection ends — and
/// when the half-close cuts a frame in the middle, the buffered complete
/// requests are served *before* the one typed mid-frame error.
#[test]
fn half_close_after_deep_pipelining_serves_the_whole_backlog() {
    let (out, fit_data, key_bytes) = fit_tenant(152);
    let registry = Arc::new(SessionRegistry::new(4));
    registry.load_key("t", key_bytes).unwrap();
    let server = Server::spawn_with("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    const PIPELINED: usize = 24; // 3x the default window of 8
    let request = wire::Request::Transform {
        tenant: "t".to_string(),
        batch: fit_data.clone(),
    };
    let bytes = wire::encode_frame(&request.to_frame());

    // Clean half-close between frames: every buffered request answers,
    // then EOF — no bogus malformed-frame error.
    let mut reader = TcpStream::connect(addr).unwrap();
    reader
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = reader.try_clone().unwrap();
    for _ in 0..PIPELINED {
        writer.write_all(&bytes).unwrap();
    }
    writer.flush().unwrap();
    writer.shutdown(Shutdown::Write).unwrap();
    for i in 0..PIPELINED {
        let frame = wire::read_frame(&mut reader).unwrap().unwrap();
        match wire::Response::from_frame(&frame).unwrap() {
            wire::Response::Transformed { released, .. } => {
                assert_bitwise(&released, &out.released, "half-closed pipeline")
            }
            other => panic!("response {i}: expected Transformed, got {other:?}"),
        }
    }
    match wire::read_frame(&mut reader) {
        Ok(None) => {}
        other => panic!("expected a clean close after the backlog, got {other:?}"),
    }

    // Half-close mid-frame: the complete requests answer first, then the
    // one typed mid-frame error, then the close.
    let mut reader = TcpStream::connect(addr).unwrap();
    reader
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = reader.try_clone().unwrap();
    for _ in 0..PIPELINED {
        writer.write_all(&bytes).unwrap();
    }
    writer.write_all(&bytes[..bytes.len() / 2]).unwrap();
    writer.flush().unwrap();
    writer.shutdown(Shutdown::Write).unwrap();
    for i in 0..PIPELINED {
        let frame = wire::read_frame(&mut reader).unwrap().unwrap();
        match wire::Response::from_frame(&frame).unwrap() {
            wire::Response::Transformed { released, .. } => {
                assert_bitwise(&released, &out.released, "torn-tail pipeline")
            }
            other => panic!("response {i}: expected Transformed, got {other:?}"),
        }
    }
    // The torn trailing frame is answered with the typed error; the
    // severance can win the race against the final write, so a close
    // with no frame is also legal.
    if let Ok(Some(frame)) = wire::read_frame(&mut reader) {
        match wire::Response::from_frame(&frame).unwrap() {
            wire::Response::Error { code, .. } => assert_eq!(code, 4),
            other => panic!("expected the mid-frame rejection, got {other:?}"),
        }
    }

    let report = server.shutdown();
    assert_eq!(report.spawned, report.joined);
}

/// (satellite b) Arrivals past `max_conns` are refused with a typed
/// `Error` frame (code 8, the unavailable family), not a silent RST, and
/// the refusal is counted; capacity frees as connections close.
#[test]
fn connections_past_the_cap_are_refused_with_a_typed_frame() {
    let registry = Arc::new(SessionRegistry::new(4));
    let config = ServerConfig {
        max_conns: 2,
        ..ServerConfig::default()
    };
    let server = Server::spawn_with("127.0.0.1:0", registry, config).unwrap();
    let addr = server.local_addr();

    let mut first = Client::connect(addr).unwrap();
    let mut second = Client::connect(addr).unwrap();
    first.ping().unwrap();
    second.ping().unwrap();

    // Third arrival: refused with the unavailable code before any request
    // is sent.
    let mut refused = TcpStream::connect(addr).unwrap();
    refused
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let frame = wire::read_frame(&mut refused).unwrap().unwrap();
    match wire::Response::from_frame(&frame).unwrap() {
        wire::Response::Error { code, message } => {
            assert_eq!(code, wire::CODE_UNAVAILABLE, "{message}");
        }
        other => panic!("expected the capacity refusal, got {other:?}"),
    }

    // Closing one connection frees a slot.
    drop(first);
    let mut third = loop {
        match Client::connect(addr) {
            Ok(mut c) => match c.ping() {
                Ok(()) => break c,
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            },
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    let stats = third.stats().unwrap();
    assert!(stats.runtime.refused >= 1, "{:?}", stats.runtime);
    drop(second);
    drop(third);

    let report = server.shutdown();
    assert_eq!(report.spawned, report.joined);
}

/// The circuit breaker opens after consecutive transport failures, fails
/// fast without touching the network, and half-opens after the cooldown —
/// recovering as soon as a replacement server is reachable.
#[test]
fn circuit_breaker_opens_fails_fast_and_recovers_through_half_open() {
    let registry = Arc::new(SessionRegistry::new(4));
    let first = Server::spawn("127.0.0.1:0", Arc::clone(&registry), 8).unwrap();
    let addr_slot = Arc::new(Mutex::new(first.local_addr()));

    let policy = RetryPolicy {
        max_retries: 0,
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(100),
        ..RetryPolicy::default()
    };
    let provider_slot = Arc::clone(&addr_slot);
    let mut client = Client::connect_via(move || *provider_slot.lock().unwrap(), policy).unwrap();
    client.ping().unwrap();

    // Kill the server: the next pings fail transport-class until the
    // breaker trips.
    let report = first.shutdown();
    assert_eq!(report.spawned, report.joined);
    for i in 0..2 {
        match client.ping() {
            Err(ClientError::CircuitOpen { .. }) => panic!("breaker tripped early, ping {i}"),
            Err(_) => {}
            Ok(()) => panic!("ping {i} cannot succeed against a dead server"),
        }
    }
    match client.ping() {
        Err(ClientError::CircuitOpen { failures }) => assert!(failures >= 2),
        other => panic!("expected the breaker to fail fast, got {other:?}"),
    }
    assert!(client.metrics().breaker_fast_fails >= 1);

    // Recovery: a replacement comes up, the cooldown passes, and the
    // half-open probe closes the breaker again.
    let second = Server::spawn("127.0.0.1:0", registry, 8).unwrap();
    *addr_slot.lock().unwrap() = second.local_addr();
    std::thread::sleep(Duration::from_millis(150));
    client
        .ping()
        .expect("the half-open probe must reach the replacement server");
    client.ping().expect("the breaker must be closed again");

    let report = second.shutdown();
    assert_eq!(report.spawned, report.joined);
}

/// SIGHUP-style hot reload: keys dropped into the directory while the
/// server runs are picked up by the `ReloadKeys` opcode, corrupt drops
/// are quarantined instead of breaking the reload, and the new tenant
/// serves bitwise.
#[test]
fn reload_keys_hot_loads_new_tenants_and_quarantines_corrupt_drops() {
    let dir = temp_dir("hot-reload");
    let (out_a, fit_a, key_a) = fit_tenant(151);
    let (out_b, fit_b, key_b) = fit_tenant(152);

    let store = Arc::new(KeyStore::open(&dir).unwrap());
    store.put("a", &key_a).unwrap();
    let registry = Arc::new(SessionRegistry::new(8));
    store.load_into(&registry).unwrap();
    let config = ServerConfig {
        keystore: Some(Arc::clone(&store)),
        ..ServerConfig::default()
    };
    let server = Server::spawn_with("127.0.0.1:0", registry, config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let (released, _) = client.transform("a", &fit_a).unwrap();
    assert_bitwise(&released, &out_a.released, "initial tenant");
    match client.transform("b", &fit_b) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, 2, "b is not loaded yet"),
        other => panic!("expected unknown-tenant, got {other:?}"),
    }

    // Operator drops a new key and one corrupt file, then reloads.
    store.put("b", &key_b).unwrap();
    let mut torn = key_a.clone();
    torn.truncate(torn.len() / 3);
    store.put("torn", &torn).unwrap();
    let (loaded, quarantined) = client.reload_keys().unwrap();
    assert_eq!(loaded, 2, "a and b decode");
    assert_eq!(quarantined, 1, "the torn drop is quarantined");

    let (released, _) = client.transform("b", &fit_b).unwrap();
    assert_bitwise(&released, &out_b.released, "hot-loaded tenant");
    let stats = client.stats().unwrap();
    assert!(stats.runtime.reloads >= 1, "{:?}", stats.runtime);

    drop(client);
    let report = server.shutdown();
    assert_eq!(report.spawned, report.joined);
    std::fs::remove_dir_all(&dir).unwrap();
}
