//! The connection-churn battery: a long-lived daemon must survive an
//! unbounded stream of short-lived connections without accumulating
//! state — handler threads reaped as they finish (not hoarded until
//! shutdown), the live-connection count bounded by what is actually
//! open, and the admission counters exact: every arrival lands in
//! exactly one of `accepted` or `refused`, and a refusal bumps nothing
//! else.
//!
//! Every scenario runs against both connection cores (the readiness-
//! polled reactor and the legacy thread-per-connection core), selected
//! explicitly through `ServerConfig::core` so the tests are immune to
//! the `RBT_SERVER_CORE` environment override. CI additionally executes
//! the battery under `RBT_THREADS=1` and the default pool width; the
//! pool reads the variable at call time, so no per-test plumbing is
//! needed.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rbt::server::{wire, Client, ConnectionCore, Server, ServerConfig, SessionRegistry};

/// The cores available on this platform. The reactor needs the Unix
/// `poll(2)` shim; elsewhere only the threaded core exists.
fn cores() -> Vec<ConnectionCore> {
    if cfg!(unix) {
        vec![ConnectionCore::Reactor, ConnectionCore::Threaded]
    } else {
        vec![ConnectionCore::Threaded]
    }
}

fn spawn_core(core: ConnectionCore, max_conns: usize) -> Server {
    let config = ServerConfig {
        max_conns,
        core,
        ..ServerConfig::default()
    };
    Server::spawn_with("127.0.0.1:0", Arc::new(SessionRegistry::new(4)), config).unwrap()
}

/// Polls `cond` until it holds or `timeout` elapses; panics with `what`
/// on expiry so the failure names the invariant, not the sleep.
fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Sequential connect/request/disconnect cycles leak nothing: mid-run,
/// the live count and the handler-thread join backlog stay bounded by a
/// small constant (independent of how many connections have churned
/// through), and at the end every admitted connection is accounted
/// finished with exact counters.
#[test]
fn sequential_churn_keeps_live_and_backlog_bounded() {
    const CYCLES: u64 = 200;
    // The churn bound: how many connections may be in flight (or
    // awaiting reap) at once under strictly sequential churn. Generous
    // for slow CI, but orders of magnitude below CYCLES — the point is
    // that the backlog does not grow with churn.
    const BOUND: u64 = 32;

    for core in cores() {
        let server = spawn_core(core, 64);
        let addr = server.local_addr();

        for cycle in 0..CYCLES {
            let mut client = Client::connect(addr).unwrap();
            client.ping().unwrap();
            drop(client);
            if cycle % 50 == 49 {
                let acct = server.accounting();
                assert!(
                    acct.live <= BOUND,
                    "{core:?} cycle {cycle}: {} live connections (bound {BOUND})",
                    acct.live
                );
                assert!(
                    acct.handle_backlog <= BOUND,
                    "{core:?} cycle {cycle}: {} unreaped handles (bound {BOUND})",
                    acct.handle_backlog
                );
            }
        }

        // Quiesce: the last disconnect is observed asynchronously.
        wait_until(
            &format!("{core:?}: all churned connections retired"),
            Duration::from_secs(10),
            || server.accounting().live == 0,
        );
        let acct = server.accounting();
        assert_eq!(acct.spawned, CYCLES, "{core:?}: admissions");
        assert_eq!(acct.finished, CYCLES, "{core:?}: retirements");
        assert!(
            acct.handle_backlog <= BOUND,
            "{core:?}: final handle backlog {}",
            acct.handle_backlog
        );

        // Counter exactness, read over the wire like an operator would:
        // every churned connection was accepted and ended as a clean
        // peer disconnect; nothing was refused, reaped, or severed.
        let mut probe = Client::connect(addr).unwrap();
        let stats = probe.stats().unwrap();
        assert_eq!(stats.runtime.accepted, CYCLES + 1, "{core:?}: accepted");
        assert_eq!(stats.runtime.refused, 0, "{core:?}: refused");
        assert_eq!(stats.runtime.disconnects, CYCLES, "{core:?}: disconnects");
        assert_eq!(stats.runtime.malformed, 0, "{core:?}: malformed");
        assert_eq!(stats.runtime.idle_reaped, 0, "{core:?}: idle_reaped");
        assert_eq!(stats.runtime.stalled, 0, "{core:?}: stalled");
        drop(probe);

        let report = server.shutdown();
        assert_eq!(report.spawned, CYCLES + 1, "{core:?}: report admissions");
        assert_eq!(report.joined, report.spawned, "{core:?}: spawned == joined");
        assert_eq!(report.forced, 0, "{core:?}: nothing force-severed");
    }
}

/// The thousand-connection soak: the reactor core absorbs ~10^3
/// short-lived connections on its single event loop plus the fixed
/// worker pool, with zero handle backlog ever (the reactor owns no
/// per-connection threads) and every connection retired by the end.
#[cfg(unix)]
#[test]
fn thousand_connection_soak_on_the_reactor() {
    const CYCLES: u64 = 1000;
    let server = spawn_core(ConnectionCore::Reactor, 64);
    let addr = server.local_addr();

    for cycle in 0..CYCLES {
        let mut client = Client::connect(addr).unwrap();
        client.ping().unwrap();
        drop(client);
        if cycle % 100 == 99 {
            let acct = server.accounting();
            assert!(
                acct.live <= 32,
                "cycle {cycle}: {} live connections under sequential churn",
                acct.live
            );
            assert_eq!(
                acct.handle_backlog, 0,
                "cycle {cycle}: the reactor owns no per-connection handles"
            );
        }
    }

    wait_until("soak connections retired", Duration::from_secs(20), || {
        server.accounting().live == 0
    });
    let acct = server.accounting();
    assert_eq!(acct.spawned, CYCLES);
    assert_eq!(acct.finished, CYCLES);

    let report = server.shutdown();
    assert_eq!(report.spawned, CYCLES);
    assert_eq!(report.joined, CYCLES);
    assert_eq!(report.forced, 0);
}

/// (satellite) A capacity refusal bumps `refused` and nothing else: the
/// turned-away arrival gets the typed unavailable frame, is never
/// admitted (`spawned` unchanged), and leaves the drain/disconnect/
/// malformed counters untouched on both cores.
#[test]
fn refusal_bumps_only_the_refused_counter() {
    for core in cores() {
        let server = spawn_core(core, 1);
        let addr = server.local_addr();

        let mut admitted = Client::connect(addr).unwrap();
        admitted.ping().unwrap();

        let mut turned_away = TcpStream::connect(addr).unwrap();
        turned_away
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let frame = wire::read_frame(&mut turned_away).unwrap().unwrap();
        match wire::Response::from_frame(&frame).unwrap() {
            wire::Response::Error { code, message } => {
                assert_eq!(code, wire::CODE_UNAVAILABLE, "{core:?}: {message}");
            }
            other => panic!("{core:?}: expected the capacity refusal, got {other:?}"),
        }
        drop(turned_away);

        // The refusal may land before or after our stats read; wait for
        // the counter rather than racing it.
        wait_until(
            &format!("{core:?}: refusal counted"),
            Duration::from_secs(5),
            || {
                admitted
                    .stats()
                    .map(|s| s.runtime.refused == 1)
                    .unwrap_or(false)
            },
        );
        let stats = admitted.stats().unwrap();
        assert_eq!(stats.runtime.accepted, 1, "{core:?}: accepted");
        assert_eq!(stats.runtime.refused, 1, "{core:?}: refused");
        assert_eq!(stats.runtime.disconnects, 0, "{core:?}: disconnects");
        assert_eq!(stats.runtime.drained, 0, "{core:?}: drained");
        assert_eq!(stats.runtime.malformed, 0, "{core:?}: malformed");
        let acct = server.accounting();
        assert_eq!(acct.spawned, 1, "{core:?}: the refusal was never admitted");

        drop(admitted);
        wait_until(
            &format!("{core:?}: admitted connection retired"),
            Duration::from_secs(10),
            || server.accounting().live == 0,
        );
        let report = server.shutdown();
        assert_eq!(report.spawned, 1, "{core:?}");
        assert_eq!(report.joined, 1, "{core:?}");
    }
}
